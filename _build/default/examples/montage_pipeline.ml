(* MONTAGE pipeline anatomy: inspect how Algorithm 1 maps the mosaic
   workflow onto processors, where Algorithm 2 places checkpoints, and
   how the linearisation policy (the paper's future-work sum-cut
   heuristic) changes the checkpointed data volume.

   Run with: dune exec examples/montage_pipeline.exe *)

module Dag = Ckpt_dag.Dag
module Spec = Ckpt_workflows.Spec
module Recognize = Ckpt_mspg.Recognize
module Allocate = Ckpt_core.Allocate
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Linearize = Ckpt_core.Linearize
module Placement = Ckpt_core.Placement
module Pipeline = Ckpt_core.Pipeline
module Strategy = Ckpt_core.Strategy
module Platform = Ckpt_platform.Platform

let () =
  let dag = Spec.generate Spec.Montage ~seed:1 ~tasks:50 () in
  Format.printf "%a@." Dag.pp_stats dag;

  (* the raw mosaic is not an M-SPG: the mProjectPP/mDiffFit overlap
     block is an incomplete bipartite graph (like the paper's LIGO
     instances) and gets completed with empty dummy dependencies *)
  (match Recognize.of_dag dag with
  | Ok _ -> Format.printf "raw graph is a strict M-SPG@."
  | Error _ -> (
      match Recognize.of_dag_completed dag with
      | Ok (_, d) -> Format.printf "completed with %d dummy dependencies (footnote 2)@." d
      | Error e -> failwith e));

  let setup = Pipeline.prepare ~dag ~processors:5 ~pfail:0.001 ~ccr:0.1 () in
  let schedule = setup.Pipeline.schedule in
  let sdag = schedule.Schedule.dag in
  Format.printf "@.schedule on 5 processors:@.";
  Array.iter
    (fun (sc : Superchain.t) ->
      let kinds = Hashtbl.create 8 in
      Array.iter
        (fun t ->
          let name = (Dag.task sdag t).Ckpt_dag.Task.name in
          Hashtbl.replace kinds name (1 + Option.value ~default:0 (Hashtbl.find_opt kinds name)))
        sc.Superchain.order;
      let summary =
        Hashtbl.fold (fun name c acc -> Printf.sprintf "%dx %s" c name :: acc) kinds []
        |> List.sort compare |> String.concat ", "
      in
      Format.printf "  superchain %2d on p%d: %s@." sc.Superchain.id sc.Superchain.processor
        summary)
    schedule.Schedule.superchains;

  let plan = Pipeline.plan setup Strategy.Ckpt_some in
  Format.printf "@.CKPTSOME checkpoints %d of %d possible positions@."
    plan.Strategy.checkpoint_count (Dag.n_tasks dag);
  let lambda = setup.Pipeline.platform.Platform.lambda in
  Array.iter
    (fun (seg : Placement.segment) ->
      if seg.Placement.last - seg.Placement.first > 0 then
        Format.printf
          "  segment p%d[%d..%d]: R=%.2fs W=%.2fs C=%.2fs -> expected %.2fs@."
          seg.Placement.chain seg.Placement.first seg.Placement.last seg.Placement.read
          seg.Placement.work seg.Placement.write
          (Placement.expected_time ~lambda seg))
    plan.Strategy.segments;

  (* ablation: linearisation policy vs checkpointed volume. The
     min-volume order tries to reduce live data at checkpoint times
     (the sum-cut objective the paper leaves as future work). *)
  Format.printf "@.linearisation ablation (total expected makespan, CKPTSOME):@.";
  List.iter
    (fun (name, policy) ->
      let schedule = Allocate.run ~policy setup.Pipeline.mspg ~processors:5 in
      let plan' =
        Strategy.plan Strategy.Ckpt_some ~raw:dag ~schedule ~platform:setup.Pipeline.platform
      in
      Format.printf "  %-14s EM = %.2f s, %d checkpoints@." name
        (Strategy.expected_makespan plan')
        plan'.Strategy.checkpoint_count)
    [ ("deterministic", Linearize.Deterministic);
      ("random", Linearize.Random (Ckpt_prob.Rng.create 7));
      ("min-volume", Linearize.Min_volume) ]
