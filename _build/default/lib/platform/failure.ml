module Rng = Ckpt_prob.Rng

type t = {
  rng : Rng.t;
  lambda : float;
  mutable instants : float array; (* materialised prefix, increasing *)
  mutable count : int;
  mutable horizon : float; (* last instant generated *)
}

let create rng ~lambda =
  { rng = Rng.split rng; lambda; instants = Array.make 8 0.; count = 0; horizon = 0. }

let push t x =
  if t.count = Array.length t.instants then begin
    let fresh = Array.make (2 * t.count) 0. in
    Array.blit t.instants 0 fresh 0 t.count;
    t.instants <- fresh
  end;
  t.instants.(t.count) <- x;
  t.count <- t.count + 1

let extend_past t time =
  while t.horizon <= time do
    let gap = Rng.exponential t.rng ~rate:t.lambda in
    t.horizon <- t.horizon +. gap;
    push t t.horizon
  done

let next_after t time =
  if t.lambda <= 0. then infinity
  else begin
    extend_past t time;
    (* binary search for the first instant > time *)
    let lo = ref 0 and hi = ref t.count in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.instants.(mid) > time then hi := mid else lo := mid + 1
    done;
    t.instants.(!lo)
  end

let count_until t time =
  if t.lambda <= 0. then 0
  else begin
    extend_past t time;
    let c = ref 0 in
    (try
       for i = 0 to t.count - 1 do
         if t.instants.(i) <= time then incr c else raise Exit
       done
     with Exit -> ());
    !c
  end
