(** Failure traces for discrete-event simulation.

    Each processor experiences fail-stop failures whose inter-arrival
    times are i.i.d. Exp(λ). A failed processor loses its memory
    contents, reboots instantaneously (the paper folds reboot/downtime
    into the recovery read), and resumes from the last checkpoint. A
    trace is the increasing sequence of failure instants of one
    processor; it is generated lazily so simulations of arbitrary
    length never materialise unused failures. *)

type t
(** Per-processor lazy failure trace. *)

val create : Ckpt_prob.Rng.t -> lambda:float -> t
(** Fresh trace; the generator is split so sibling traces are
    independent. [lambda = 0.] yields a failure-free trace. *)

val next_after : t -> float -> float
(** [next_after trace t] is the first failure instant strictly greater
    than [t]. Returns [infinity] for failure-free traces. Successive
    calls may go backward in time: the materialised prefix is kept. *)

val count_until : t -> float -> int
(** Number of failures in [\[0, t\]] — used by tests to check the rate. *)
