type t = {
  processors : int;
  lambda : float;
  bandwidth : float;
  rates : float array option;
}

let make ~processors ~lambda ~bandwidth =
  if processors < 1 then invalid_arg "Platform.make: need at least one processor";
  if lambda < 0. then invalid_arg "Platform.make: negative failure rate";
  if bandwidth <= 0. then invalid_arg "Platform.make: non-positive bandwidth";
  { processors; lambda; bandwidth; rates = None }

let make_heterogeneous ~rates ~bandwidth =
  let processors = Array.length rates in
  if processors < 1 then invalid_arg "Platform.make_heterogeneous: no processors";
  Array.iter
    (fun r -> if r < 0. then invalid_arg "Platform.make_heterogeneous: negative rate")
    rates;
  if bandwidth <= 0. then invalid_arg "Platform.make_heterogeneous: non-positive bandwidth";
  let mean = Array.fold_left ( +. ) 0. rates /. float_of_int processors in
  { processors; lambda = mean; bandwidth; rates = Some (Array.copy rates) }

let rate_of t proc =
  if proc < 0 || proc >= t.processors then invalid_arg "Platform.rate_of: bad processor";
  match t.rates with None -> t.lambda | Some rates -> rates.(proc)

let total_rate t =
  match t.rates with
  | None -> float_of_int t.processors *. t.lambda
  | Some rates -> Array.fold_left ( +. ) 0. rates

let io_time t size = size /. t.bandwidth

let lambda_of_pfail ~pfail ~mean_weight =
  if pfail < 0. || pfail >= 1. then invalid_arg "Platform.lambda_of_pfail: pfail not in [0,1)";
  if mean_weight <= 0. then invalid_arg "Platform.lambda_of_pfail: non-positive mean weight";
  -.log (1. -. pfail) /. mean_weight

let pfail_of_lambda ~lambda ~mean_weight = 1. -. exp (-.lambda *. mean_weight)

let bandwidth_for_ccr ~ccr ~total_data ~total_weight =
  if ccr <= 0. || total_data <= 0. || total_weight <= 0. then
    invalid_arg "Platform.bandwidth_for_ccr: non-positive argument";
  (* ccr = (total_data / bw) / total_weight  =>  bw = total_data / (ccr * total_weight) *)
  total_data /. (ccr *. total_weight)

let pp fmt t =
  match t.rates with
  | None ->
      Format.fprintf fmt "platform(p=%d, lambda=%g, bw=%g)" t.processors t.lambda t.bandwidth
  | Some _ ->
      Format.fprintf fmt "platform(p=%d, heterogeneous, mean lambda=%g, bw=%g)" t.processors
        t.lambda t.bandwidth
