lib/platform/failure.mli: Ckpt_prob
