lib/platform/failure.ml: Array Ckpt_prob
