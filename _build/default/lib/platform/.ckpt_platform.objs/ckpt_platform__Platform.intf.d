lib/platform/platform.mli: Format
