lib/platform/platform.ml: Array Format
