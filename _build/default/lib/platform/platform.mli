(** Execution platform model (Section VI-A).

    A platform is [p] processors, each subject to fail-stop failures
    with exponentially distributed inter-arrival times, plus a stable
    storage (shared file system) of bandwidth [bandwidth] bytes/second
    through which all checkpoint, recovery and initial-input traffic
    flows. Reading or writing a file of size [s] takes
    [s / bandwidth] seconds.

    The paper's platforms are homogeneous (one rate λ for everyone);
    {!make_heterogeneous} extends the model with per-processor rates —
    Algorithm 2 then naturally checkpoints more densely on flakier
    processors. [lambda] always exposes the mean rate. *)

type t = private {
  processors : int;
  lambda : float;  (** mean failure rate across processors *)
  bandwidth : float;
  rates : float array option;  (** per-processor rates, when heterogeneous *)
}

val make : processors:int -> lambda:float -> bandwidth:float -> t
(** Homogeneous platform.
    @raise Invalid_argument unless [processors >= 1], [lambda >= 0.]
    and [bandwidth > 0.]. *)

val make_heterogeneous : rates:float array -> bandwidth:float -> t
(** One processor per entry of [rates].
    @raise Invalid_argument on an empty array, a negative rate or a
    non-positive bandwidth. *)

val rate_of : t -> int -> float
(** Failure rate of one processor.
    @raise Invalid_argument on an out-of-range processor index. *)

val total_rate : t -> float
(** Sum of all processors' failure rates (the aggregate failure
    process seen by restart-from-scratch strategies). *)

val io_time : t -> float -> float
(** [io_time p size] is the time to move [size] data units to or from
    stable storage. *)

val lambda_of_pfail : pfail:float -> mean_weight:float -> float
(** The paper's failure-rate normalisation: picks λ such that a task
    of average weight w̄ fails with probability [pfail], i.e.
    [pfail = 1 - exp (-λ w̄)].

    @raise Invalid_argument unless [0 <= pfail < 1] and
    [mean_weight > 0]. *)

val pfail_of_lambda : lambda:float -> mean_weight:float -> float
(** Inverse of {!lambda_of_pfail}. *)

val bandwidth_for_ccr :
  ccr:float -> total_data:float -> total_weight:float -> float
(** Bandwidth giving the requested Communication-to-Computation Ratio,
    where CCR = (total file store time) / (total computation time) =
    (total_data / bandwidth) / total_weight. Equivalently, the paper
    scales file sizes; scaling bandwidth by the inverse factor is the
    same operation and keeps data volumes intact.

    @raise Invalid_argument unless all arguments are positive. *)

val pp : Format.formatter -> t -> unit
