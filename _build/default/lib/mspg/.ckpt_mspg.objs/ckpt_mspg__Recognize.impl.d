lib/mspg/recognize.ml: Array Ckpt_dag Hashtbl List Mspg Printf
