lib/mspg/mspg.ml: Array Ckpt_dag Format List Printf String
