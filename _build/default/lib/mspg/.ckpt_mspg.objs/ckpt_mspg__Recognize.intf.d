lib/mspg/recognize.mli: Ckpt_dag Mspg
