lib/mspg/mspg.mli: Ckpt_dag Format
