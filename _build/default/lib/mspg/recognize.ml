module Dag = Ckpt_dag.Dag

exception Reject of string

(* All set manipulations below work on sorted int lists of task ids,
   with membership tested through a scratch bool array indexed by task
   id (reset between uses). Workflows have at most a few thousand
   tasks, so this is simple and fast enough. *)

let restrict_succs dag member u = List.filter (fun v -> member.(v)) (Dag.succ_ids dag u)
let restrict_preds dag member u = List.filter (fun v -> member.(v)) (Dag.pred_ids dag u)

let with_membership n verts f =
  let member = Array.make n false in
  List.iter (fun v -> member.(v) <- true) verts;
  f member

(* Weakly connected components of the sub-DAG induced by [verts]. *)
let components dag n verts =
  with_membership n verts (fun member ->
      let comp = Array.make n (-1) in
      let next = ref 0 in
      let rec bfs queue id =
        match queue with
        | [] -> ()
        | u :: rest ->
            let fresh =
              List.filter
                (fun v -> member.(v) && comp.(v) < 0 && (comp.(v) <- id; true))
                (Dag.succ_ids dag u @ Dag.pred_ids dag u)
            in
            bfs (rest @ fresh) id
      in
      List.iter
        (fun v ->
          if comp.(v) < 0 then begin
            comp.(v) <- !next;
            bfs [ v ] !next;
            incr next
          end)
        verts;
      let buckets = Array.make !next [] in
      List.iter (fun v -> buckets.(comp.(v)) <- v :: buckets.(comp.(v))) (List.rev verts);
      Array.to_list buckets)

(* Descendants of the tasks in [seeds], within [member], seeds included. *)
let down_closure dag member seeds =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | [] -> ()
    | u :: rest ->
        if Hashtbl.mem seen u then go rest
        else begin
          Hashtbl.replace seen u ();
          go (List.rev_append (restrict_succs dag member u) rest)
        end
  in
  go seeds;
  seen

type cut = { v1 : int list; v2 : int list; missing : (int * int) list }
(* [missing] are the sink(V1)-source(V2) pairs lacking an edge: empty
   for a strict (complete-bipartite) cut. *)

(* Examine the cut whose V2 is the down-closure of [seed_sources].
   Returns [None] when crossing edges violate the sinks(V1) ->
   sources(V2) discipline; otherwise the cut with its missing pairs. *)
let examine_cut dag member verts seed_sources =
  let v2_set = down_closure dag member seed_sources in
  let v1 = List.filter (fun v -> not (Hashtbl.mem v2_set v)) verts in
  if v1 = [] then None
  else begin
    let v2 = List.filter (Hashtbl.mem v2_set) verts in
    let in_v2 v = Hashtbl.mem v2_set v in
    let sinks1 =
      List.filter (fun u -> List.for_all in_v2 (restrict_succs dag member u)) v1
    in
    let sources2 =
      List.filter (fun v -> not (List.exists in_v2 (restrict_preds dag member v))) v2
    in
    let sinks1_set = Hashtbl.create 16 and sources2_set = Hashtbl.create 16 in
    List.iter (fun u -> Hashtbl.replace sinks1_set u ()) sinks1;
    List.iter (fun v -> Hashtbl.replace sources2_set v ()) sources2;
    let ok = ref true in
    List.iter
      (fun u ->
        List.iter
          (fun v ->
            if in_v2 v && not (Hashtbl.mem sinks1_set u && Hashtbl.mem sources2_set v)
            then ok := false)
          (restrict_succs dag member u))
      v1;
    if not !ok then None
    else begin
      let missing = ref [] in
      List.iter
        (fun u ->
          let out = restrict_succs dag member u in
          List.iter (fun v -> if not (List.mem v out) then missing := (u, v) :: !missing) sources2)
        sinks1;
      Some { v1; v2; missing = !missing }
    end
  end

(* Level of each member task: longest hop-path from a source of the
   sub-DAG. Processes tasks in global topological id-independent order
   via repeated relaxation over a local topological sort. *)
let local_levels dag n verts =
  with_membership n verts (fun member ->
      let level = Hashtbl.create (List.length verts) in
      let indeg = Hashtbl.create (List.length verts) in
      List.iter
        (fun v -> Hashtbl.replace indeg v (List.length (restrict_preds dag member v)))
        verts;
      let ready = List.filter (fun v -> Hashtbl.find indeg v = 0) verts in
      List.iter (fun v -> Hashtbl.replace level v 0) ready;
      let rec process = function
        | [] -> ()
        | u :: rest ->
            let lu = Hashtbl.find level u in
            let newly =
              List.filter
                (fun v ->
                  let cur = try Hashtbl.find level v with Not_found -> -1 in
                  if lu + 1 > cur then Hashtbl.replace level v (lu + 1);
                  let d = Hashtbl.find indeg v - 1 in
                  Hashtbl.replace indeg v d;
                  d = 0)
                (restrict_succs dag member u)
            in
            process (rest @ newly)
      in
      process ready;
      level)

let rec decompose dag n ~complete ~dummies verts =
  match verts with
  | [] -> invalid_arg "Recognize: empty vertex set"
  | [ v ] -> Mspg.leaf v
  | _ -> (
      match components dag n verts with
      | [] -> assert false
      | _ :: _ :: _ as comps ->
          Mspg.parallel (List.map (decompose dag n ~complete ~dummies) comps)
      | [ _single ] ->
          (* connected: look for a serial cut *)
          with_membership n verts (fun member ->
              (* candidate source sets for V2: the distinct in-subgraph
                 successor sets (every strict cut arises this way) *)
              let candidates =
                List.filter_map
                  (fun u ->
                    match restrict_succs dag member u with [] -> None | s -> Some (List.sort compare s))
                  verts
                |> List.sort_uniq compare
              in
              let strict_cuts =
                List.filter_map
                  (fun seed ->
                    match examine_cut dag member verts seed with
                    | Some c when c.missing = [] -> Some c
                    | _ -> None)
                  candidates
              in
              let best =
                match strict_cuts with
                | [] -> None
                | l ->
                    Some
                      (List.fold_left
                         (fun acc c -> if List.length c.v1 < List.length acc.v1 then c else acc)
                         (List.hd l) (List.tl l))
              in
              match best with
              | Some cut ->
                  Mspg.serial
                    [ decompose dag n ~complete ~dummies cut.v1;
                      decompose dag n ~complete ~dummies cut.v2 ]
              | None when not complete ->
                  raise
                    (Reject
                       (Printf.sprintf
                          "connected subgraph of %d tasks admits no valid serial cut"
                          (List.length verts)))
              | None ->
                  (* bipartite completion: among the completable level
                     cuts pick the one needing the fewest dummy edges,
                     so genuinely parallel structure away from the
                     incomplete block is not serialised needlessly *)
                  let level = local_levels dag n verts in
                  let max_level =
                    List.fold_left (fun acc v -> max acc (Hashtbl.find level v)) 0 verts
                  in
                  let cut_at l =
                    let seed =
                      List.filter (fun v -> Hashtbl.find level v > l) verts
                      |> List.filter (fun v ->
                             List.for_all
                               (fun p -> Hashtbl.find level p <= l)
                               (restrict_preds dag member v))
                    in
                    examine_cut dag member verts seed
                  in
                  let best = ref None in
                  for l = 0 to max_level - 1 do
                    match cut_at l with
                    | None -> ()
                    | Some cut -> (
                        let cost = List.length cut.missing in
                        match !best with
                        | Some (c0, _) when c0 <= cost -> ()
                        | _ -> best := Some (cost, cut))
                  done;
                  (match !best with
                  | None ->
                      raise
                        (Reject
                           (Printf.sprintf
                              "connected subgraph of %d tasks is not an M-SPG and not \
                               completable by dummy dependencies"
                              (List.length verts)))
                  | Some (_, cut) ->
                      List.iter
                        (fun (u, v) ->
                          Dag.add_edge dag u v 0.;
                          incr dummies)
                        cut.missing;
                      Mspg.serial
                        [ decompose dag n ~complete ~dummies cut.v1;
                          decompose dag n ~complete ~dummies cut.v2 ])))

let recognize ~complete dag =
  Dag.check_acyclic dag;
  let n = Dag.n_tasks dag in
  if n = 0 then invalid_arg "Recognize: empty DAG";
  let verts = List.init n (fun i -> i) in
  let dummies = ref 0 in
  match decompose dag n ~complete ~dummies verts with
  | tree -> Ok (tree, !dummies)
  | exception Reject msg -> Error msg

let of_dag dag =
  match recognize ~complete:false dag with
  | Ok (tree, _) -> Ok { Mspg.dag; tree }
  | Error m -> Error m

let of_dag_completed dag =
  let copy = Dag.copy dag in
  match recognize ~complete:true copy with
  | Ok (tree, dummies) -> Ok ({ Mspg.dag = copy; tree }, dummies)
  | Error m -> Error m

let is_mspg dag = match of_dag dag with Ok _ -> true | Error _ -> false

let of_dag_gspg dag =
  Dag.check_acyclic dag;
  let reduced_edges = Dag.transitive_reduction_edges dag in
  let n = Dag.n_tasks dag in
  (* count distinct dependencies, not parallel file edges *)
  let all_edges = ref [] in
  for u = 0 to n - 1 do
    List.iter (fun v -> all_edges := (u, v) :: !all_edges) (Dag.succ_ids dag u)
  done;
  let distinct = List.length (List.sort_uniq compare !all_edges) in
  let transitive = distinct - List.length reduced_edges in
  if transitive = 0 then
    match of_dag dag with Ok m -> Ok (m, 0) | Error e -> Error e
  else begin
    (* recognise on a skeleton carrying only the reduced dependencies *)
    let skeleton = Dag.create ~name:(Dag.name dag ^ "/reduced") () in
    for t = 0 to n - 1 do
      let info = Dag.task dag t in
      ignore
        (Dag.add_task skeleton ~name:info.Ckpt_dag.Task.name
           ~weight:info.Ckpt_dag.Task.weight)
    done;
    List.iter (fun (u, v) -> Dag.add_edge skeleton u v 0.) reduced_edges;
    match recognize ~complete:false skeleton with
    | Ok (tree, _) -> Ok ({ Mspg.dag; tree }, transitive)
    | Error m -> Error m
  end

let is_gspg dag = match of_dag_gspg dag with Ok _ -> true | Error _ -> false
