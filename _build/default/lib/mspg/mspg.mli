(** Minimal Series-Parallel Graphs (M-SPGs), Section II-A of the paper.

    An M-SPG is defined recursively: an atomic task; a serial
    composition [G1 ⨟ G2 ⨟ ... ⨟ Gn] that adds dependencies from all
    sinks of each [Gi] to all sources of [G(i+1)] (without merging
    them, unlike classical SPGs); or a parallel composition
    [G1 ‖ ... ‖ Gn] (plain union). The class covers fork, join and
    complete-bipartite patterns (Figure 1) and hence most production
    Pegasus workflows.

    Here an M-SPG value pairs a decomposition {e tree} with the backing
    {!Ckpt_dag.Dag.t} that holds task weights, edges and files. The
    tree drives the recursive scheduling (Algorithm 1); the DAG holds
    the quantitative data. {!validate} checks the two agree. *)

module Dag = Ckpt_dag.Dag
module Task = Ckpt_dag.Task

type tree =
  | Leaf of Task.id
  | Serial of tree list  (** >= 2 children, none itself [Serial] *)
  | Parallel of tree list  (** >= 2 children, none itself [Parallel] *)

type t = { dag : Dag.t; tree : tree }

(** {1 Smart constructors}

    [serial] and [parallel] flatten nested compositions and collapse
    singleton lists, maintaining the representation invariants above
    (associativity of both operators makes this canonical enough for
    the algorithms; [serial] preserves order). *)

val leaf : Task.id -> tree
val serial : tree list -> tree
val parallel : tree list -> tree

(** {1 Structural queries} *)

val tree_tasks : tree -> Task.id list
(** All task ids, in tree preorder (serial order respected). *)

val tree_size : tree -> int
val tree_weight : Dag.t -> tree -> float
(** Sum of the weights of the atomic tasks (the [weight] used by
    PROPMAP to balance processor allocations). *)

val tree_sources : tree -> Task.id list
(** Sources of the sub-M-SPG: sources of the first serial factor /
    union over parallel branches / the leaf itself. *)

val tree_sinks : tree -> Task.id list

val depth : tree -> int

(** {1 Canonical decomposition (Algorithm 1, line 3)} *)

type decomposition = {
  chain : Task.id list;  (** [C]: the longest possible leading chain *)
  branches : tree list;  (** [G1 ... Gn]: the parallel composition after [C] *)
  rest : tree option;  (** [G(n+1)]: remaining serial suffix *)
}

val decompose : tree -> decomposition
(** Views the tree as [C ⨟ (G1 ‖ ... ‖ Gn) ⨟ G(n+1)] with [C] maximal,
    which avoids the infinite recursions noted in the paper. For a
    pure chain, [branches = \[\]] and [rest = None]. *)

(** {1 Consistency with the backing DAG} *)

val implied_edges : tree -> (Task.id * Task.id) list
(** The exact edge set the M-SPG definition induces for this tree. *)

val validate : t -> (unit, string) result
(** Checks that the tree contains every DAG task exactly once and that
    the DAG's edges are exactly {!implied_edges}. *)

(** {1 Building M-SPGs from blueprints (tests, examples)} *)

type blueprint =
  | Btask of string * float  (** name, weight *)
  | Bserial of blueprint list
  | Bparallel of blueprint list

val build : ?name:string -> ?edge_size:(int -> int -> float) -> blueprint -> t
(** Materialises a blueprint: creates tasks, derives the implied edges,
    and gives the edge [src -> dst] a fresh file of size
    [edge_size src dst] (default: constant 1.0). *)

val pp_tree : Format.formatter -> tree -> unit
