module Dag = Ckpt_dag.Dag
module Task = Ckpt_dag.Task

type tree = Leaf of Task.id | Serial of tree list | Parallel of tree list
type t = { dag : Dag.t; tree : tree }

let leaf id = Leaf id

let serial children =
  let flattened =
    List.concat_map (function Serial l -> l | other -> [ other ]) children
  in
  match flattened with
  | [] -> invalid_arg "Mspg.serial: empty composition"
  | [ single ] -> single
  | l -> Serial l

let parallel children =
  let flattened =
    List.concat_map (function Parallel l -> l | other -> [ other ]) children
  in
  match flattened with
  | [] -> invalid_arg "Mspg.parallel: empty composition"
  | [ single ] -> single
  | l -> Parallel l

let rec tree_tasks = function
  | Leaf id -> [ id ]
  | Serial l | Parallel l -> List.concat_map tree_tasks l

let rec tree_size = function
  | Leaf _ -> 1
  | Serial l | Parallel l -> List.fold_left (fun acc t -> acc + tree_size t) 0 l

let rec tree_weight dag = function
  | Leaf id -> Dag.weight dag id
  | Serial l | Parallel l ->
      List.fold_left (fun acc t -> acc +. tree_weight dag t) 0. l

let rec tree_sources = function
  | Leaf id -> [ id ]
  | Serial [] -> []
  | Serial (hd :: _) -> tree_sources hd
  | Parallel l -> List.concat_map tree_sources l

let rec tree_sinks = function
  | Leaf id -> [ id ]
  | Serial [] -> []
  | Serial l -> tree_sinks (List.nth l (List.length l - 1))
  | Parallel l -> List.concat_map tree_sinks l

let rec depth = function
  | Leaf _ -> 1
  | Serial l | Parallel l -> 1 + List.fold_left (fun acc t -> max acc (depth t)) 0 l

type decomposition = {
  chain : Task.id list;
  branches : tree list;
  rest : tree option;
}

let decompose tree =
  let factors = match tree with Serial l -> l | other -> [ other ] in
  let rec take_chain acc = function
    | Leaf id :: tl -> take_chain (id :: acc) tl
    | rest -> (List.rev acc, rest)
  in
  let chain, after = take_chain [] factors in
  match after with
  | [] -> { chain; branches = []; rest = None }
  | Parallel branches :: tl ->
      let rest = match tl with [] -> None | l -> Some (serial l) in
      { chain; branches; rest }
  | Serial _ :: _ ->
      (* impossible by the representation invariant *)
      assert false
  | Leaf _ :: _ ->
      (* impossible: take_chain consumed all leading leaves *)
      assert false

let implied_edges tree =
  let edges = ref [] in
  let rec go = function
    | Leaf _ -> ()
    | Parallel l -> List.iter go l
    | Serial l ->
        List.iter go l;
        let rec pairs = function
          | a :: (b :: _ as tl) ->
              let sinks = tree_sinks a and sources = tree_sources b in
              List.iter
                (fun s -> List.iter (fun d -> edges := (s, d) :: !edges) sources)
                sinks;
              pairs tl
          | [] | [ _ ] -> ()
        in
        pairs l
  in
  go tree;
  !edges

let validate { dag; tree } =
  let ids = tree_tasks tree in
  let n = Dag.n_tasks dag in
  let seen = Array.make n 0 in
  let ok = ref (Ok ()) in
  List.iter
    (fun id ->
      if id < 0 || id >= n then ok := Error (Printf.sprintf "tree references unknown task %d" id)
      else seen.(id) <- seen.(id) + 1)
    ids;
  (match !ok with
  | Error _ -> ()
  | Ok () ->
      Array.iteri
        (fun id count ->
          if count = 0 then ok := Error (Printf.sprintf "task %d missing from tree" id)
          else if count > 1 then
            ok := Error (Printf.sprintf "task %d appears %d times in tree" id count))
        seen);
  match !ok with
  | Error _ as e -> e
  | Ok () ->
      let implied = List.sort_uniq compare (implied_edges tree) in
      let actual = ref [] in
      for u = 0 to n - 1 do
        List.iter (fun v -> actual := (u, v) :: !actual) (Dag.succ_ids dag u)
      done;
      let actual = List.sort_uniq compare !actual in
      if implied = actual then Ok ()
      else begin
        let missing = List.filter (fun e -> not (List.mem e actual)) implied in
        let extra = List.filter (fun e -> not (List.mem e implied)) actual in
        let show (u, v) = Printf.sprintf "%d->%d" u v in
        Error
          (Printf.sprintf "edge mismatch: missing=[%s] extra=[%s]"
             (String.concat "," (List.map show missing))
             (String.concat "," (List.map show extra)))
      end

type blueprint =
  | Btask of string * float
  | Bserial of blueprint list
  | Bparallel of blueprint list

let build ?(name = "blueprint") ?(edge_size = fun _ _ -> 1.0) blueprint =
  let dag = Dag.create ~name () in
  let rec instantiate = function
    | Btask (task_name, weight) -> leaf (Dag.add_task dag ~name:task_name ~weight)
    | Bserial l -> serial (List.map instantiate l)
    | Bparallel l -> parallel (List.map instantiate l)
  in
  let tree = instantiate blueprint in
  List.iter
    (fun (src, dst) -> Dag.add_edge dag src dst (edge_size src dst))
    (List.sort_uniq compare (implied_edges tree));
  { dag; tree }

let rec pp_tree fmt = function
  | Leaf id -> Format.fprintf fmt "%d" id
  | Serial l ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " ; ") pp_tree)
        l
  | Parallel l ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " || ") pp_tree)
        l
