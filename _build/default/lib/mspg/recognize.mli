(** M-SPG recognition: from a plain workflow DAG to a decomposition
    tree, if one exists.

    The recogniser implements the recursive characterisation directly:
    - a single task is atomic;
    - a graph with several weakly connected components is their
      parallel composition;
    - a connected graph is a serial composition iff it admits a
      {e valid cut}: a partition (V1, V2) with V1 down-closed whose
      crossing edges are exactly [sinks(V1) x sources(V2)]. Every valid
      cut satisfies [sources(V2) = succ(u)] for each sink [u] of [V1],
      so enumerating the distinct successor sets enumerates all cuts;
      the minimal-[|V1|] cut peels serial factors one at a time.

    With [~complete:true] (the paper's footnote-2 treatment of LIGO),
    when a connected graph admits no valid cut we look for a
    {e completable level cut}: a cut between longest-path levels whose
    crossing edges all go from sinks of V1 to sources of V2, but form
    an incomplete bipartite graph. Missing pairs are filled with dummy
    dependencies carrying zero-size files ("adds synchronizations but
    no data transfers"), and recognition proceeds. *)

module Dag = Ckpt_dag.Dag

val of_dag : Dag.t -> (Mspg.t, string) result
(** Strict recognition; the input DAG is not modified and backs the
    returned M-SPG.

    @raise Invalid_argument if the graph is cyclic or empty. *)

val of_dag_completed : Dag.t -> (Mspg.t * int, string) result
(** Recognition with bipartite completion. Works on a {e copy} of the
    input (the caller's DAG is never touched — baseline strategies keep
    processing the raw graph). Returns the M-SPG over the completed
    copy and the number of dummy edges added. *)

val is_mspg : Dag.t -> bool

val of_dag_gspg : Dag.t -> (Mspg.t * int, string) result
(** General Series-Parallel Graph recognition — the first step of the
    paper's future work (Section VIII): a DAG is a GSPG iff its
    {e transitive reduction} is an M-SPG. Recognition runs on the
    reduced edge set; the returned M-SPG is backed by the {e original}
    DAG, so transitive data edges keep contributing to the R/C
    checkpoint costs (the extended checkpoint saves any datum with a
    pending consumer, wherever that consumer sits). Returns the number
    of transitive edges that were ignored during recognition.

    Note that [Mspg.validate] legitimately fails on the result when
    transitive edges exist: the decomposition tree implies only the
    reduced dependencies. *)

val is_gspg : Dag.t -> bool
