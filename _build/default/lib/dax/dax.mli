(** Pegasus DAX v3 import/export.

    The Pegasus Workflow Generator — the paper's workload source —
    emits abstract workflows as DAX files:

    {v
    <adag name="montage" jobCount="50" ...>
      <job id="ID00000" name="mProjectPP" runtime="13.59">
        <uses file="raw_0.fits" link="input" size="4222"/>
        <uses file="proj_0.fits" link="output" size="8002"/>
      </job>
      ...
      <child ref="ID00002"><parent ref="ID00000"/></child>
    </adag>
    v}

    Import maps each [job] to a task (weight = [runtime] seconds),
    each output [uses] to a file of the given size (in bytes), each
    input [uses] to either a dependency edge from the producing job
    (shared files keep their identity, so a file consumed by several
    jobs is checkpointed once) or, when no job produces it, an initial
    input read from stable storage. [child]/[parent] declarations are
    checked against the file-induced edges; a declared dependency with
    no connecting file becomes a zero-size control edge.

    Export writes the reverse mapping; [of_string (to_string dag)]
    rebuilds an identical workflow (task order, weights, file sizes
    and sharing, initial inputs). *)

exception Error of string

val of_string : string -> Ckpt_dag.Dag.t
(** @raise Error on malformed DAX (unknown refs, duplicate job ids,
    missing attributes, negative sizes, cyclic dependencies). *)

val to_string : Ckpt_dag.Dag.t -> string

val load : string -> Ckpt_dag.Dag.t
(** [load path] reads and parses a DAX file.

    @raise Error as {!of_string}, or [Sys_error] on I/O failure. *)

val save : string -> Ckpt_dag.Dag.t -> unit
