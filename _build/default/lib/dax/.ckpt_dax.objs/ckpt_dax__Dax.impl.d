lib/dax/dax.ml: Array Ckpt_dag Fun Hashtbl List Option Printf Xml
