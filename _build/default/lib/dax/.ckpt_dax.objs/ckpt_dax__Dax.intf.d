lib/dax/dax.mli: Ckpt_dag
