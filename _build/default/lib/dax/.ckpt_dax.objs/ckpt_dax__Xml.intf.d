lib/dax/xml.mli:
