lib/dax/xml.ml: Buffer List Printf String
