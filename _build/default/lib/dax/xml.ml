type t = Element of string * (string * string) list * t list | Text of string

exception Parse_error of { position : int; message : string }

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type cursor = { src : string; mutable pos : int }

let fail cur message = raise (Parse_error { position = cur.pos; message })
let eof cur = cur.pos >= String.length cur.src

let peek cur = if eof cur then '\000' else cur.src.[cur.pos]

let advance cur = cur.pos <- cur.pos + 1

let expect cur c =
  if peek cur <> c then fail cur (Printf.sprintf "expected %C, found %C" c (peek cur));
  advance cur

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let skip_spaces cur =
  while (not (eof cur)) && is_space (peek cur) do
    advance cur
  done

let is_name_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':'

let read_name cur =
  let start = cur.pos in
  while (not (eof cur)) && is_name_char (peek cur) do
    advance cur
  done;
  if cur.pos = start then fail cur "expected a name";
  String.sub cur.src start (cur.pos - start)

let decode_entities s =
  if not (String.contains s '&') then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if s.[!i] = '&' then begin
        let semi = try String.index_from s !i ';' with Not_found -> -1 in
        if semi < 0 then begin
          Buffer.add_char buf '&';
          incr i
        end
        else begin
          let entity = String.sub s (!i + 1) (semi - !i - 1) in
          (match entity with
          | "amp" -> Buffer.add_char buf '&'
          | "lt" -> Buffer.add_char buf '<'
          | "gt" -> Buffer.add_char buf '>'
          | "quot" -> Buffer.add_char buf '"'
          | "apos" -> Buffer.add_char buf '\''
          | other -> Buffer.add_string buf ("&" ^ other ^ ";"));
          i := semi + 1
        end
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end

let read_quoted cur =
  let quote = peek cur in
  if quote <> '"' && quote <> '\'' then fail cur "expected a quoted value";
  advance cur;
  let start = cur.pos in
  while (not (eof cur)) && peek cur <> quote do
    advance cur
  done;
  if eof cur then fail cur "unterminated attribute value";
  let raw = String.sub cur.src start (cur.pos - start) in
  advance cur;
  decode_entities raw

let read_attributes cur =
  let rec go acc =
    skip_spaces cur;
    match peek cur with
    | '>' | '/' | '?' -> List.rev acc
    | _ ->
        let key = read_name cur in
        skip_spaces cur;
        expect cur '=';
        skip_spaces cur;
        let value = read_quoted cur in
        go ((key, value) :: acc)
  in
  go []

let skip_until cur marker =
  let n = String.length marker in
  let rec go () =
    if cur.pos + n > String.length cur.src then fail cur ("unterminated " ^ marker)
    else if String.sub cur.src cur.pos n = marker then cur.pos <- cur.pos + n
    else begin
      advance cur;
      go ()
    end
  in
  go ()

(* consume <?...?> and <!--...--> before or between elements *)
let rec skip_misc cur =
  skip_spaces cur;
  if (not (eof cur)) && peek cur = '<' && cur.pos + 1 < String.length cur.src then
    match cur.src.[cur.pos + 1] with
    | '?' ->
        skip_until cur "?>";
        skip_misc cur
    | '!' ->
        if
          cur.pos + 3 < String.length cur.src
          && String.sub cur.src cur.pos 4 = "<!--"
        then begin
          skip_until cur "-->";
          skip_misc cur
        end
        else fail cur "unsupported <! construct (CDATA/DOCTYPE)"
    | _ -> ()

let rec parse_element cur =
  expect cur '<';
  let tag = read_name cur in
  let attrs = read_attributes cur in
  skip_spaces cur;
  match peek cur with
  | '/' ->
      advance cur;
      expect cur '>';
      Element (tag, attrs, [])
  | '>' ->
      advance cur;
      let children = parse_content cur tag in
      Element (tag, attrs, children)
  | c -> fail cur (Printf.sprintf "unexpected %C in tag" c)

and parse_content cur tag =
  let items = ref [] in
  let rec go () =
    if eof cur then fail cur (Printf.sprintf "unterminated element <%s>" tag);
    if peek cur = '<' then begin
      if cur.pos + 1 >= String.length cur.src then fail cur "dangling '<'";
      match cur.src.[cur.pos + 1] with
      | '/' ->
          advance cur;
          advance cur;
          let closing = read_name cur in
          if closing <> tag then
            fail cur (Printf.sprintf "mismatched </%s> inside <%s>" closing tag);
          skip_spaces cur;
          expect cur '>'
      | '!' ->
          skip_until cur "-->";
          go ()
      | '?' ->
          skip_until cur "?>";
          go ()
      | _ ->
          items := parse_element cur :: !items;
          go ()
    end
    else begin
      let start = cur.pos in
      while (not (eof cur)) && peek cur <> '<' do
        advance cur
      done;
      let text = decode_entities (String.sub cur.src start (cur.pos - start)) in
      if String.exists (fun c -> not (is_space c)) text then items := Text text :: !items;
      go ()
    end
  in
  go ();
  List.rev !items

let parse src =
  let cur = { src; pos = 0 } in
  skip_misc cur;
  if eof cur then fail cur "empty document";
  let root = parse_element cur in
  skip_misc cur;
  if not (eof cur) then fail cur "trailing content after root element";
  root

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let attr t key =
  match t with
  | Text _ -> None
  | Element (_, attrs, _) -> List.assoc_opt key attrs

let attr_exn t key = match attr t key with Some v -> v | None -> raise Not_found

let children = function
  | Text _ -> []
  | Element (_, _, kids) -> List.filter (function Element _ -> true | Text _ -> false) kids

let name = function Text _ -> "" | Element (tag, _, _) -> tag

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string t =
  let buf = Buffer.create 1024 in
  let rec go indent t =
    match t with
    | Text s -> Buffer.add_string buf (escape s)
    | Element (tag, attrs, kids) ->
        Buffer.add_string buf indent;
        Buffer.add_char buf '<';
        Buffer.add_string buf tag;
        List.iter
          (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k (escape v)))
          attrs;
        if kids = [] then Buffer.add_string buf "/>\n"
        else begin
          Buffer.add_string buf ">\n";
          List.iter (go (indent ^ "  ")) kids;
          Buffer.add_string buf indent;
          Buffer.add_string buf (Printf.sprintf "</%s>\n" tag)
        end
  in
  go "" t;
  Buffer.contents buf
