(** A minimal XML reader/writer — just enough for Pegasus DAX files.

    Supported: the XML declaration, comments, elements with attributes
    (single- or double-quoted), self-closing tags, character data
    (returned but unused by DAX), and the five standard entities.
    Unsupported (rejected): CDATA, processing instructions beyond the
    declaration, DOCTYPE, namespaced attribute quirks beyond plain
    [a:b] names. This is deliberate: DAX files produced by the Pegasus
    generator use none of those. *)

type t = Element of string * (string * string) list * t list | Text of string

exception Parse_error of { position : int; message : string }

val parse : string -> t
(** Parses a document and returns its root element.

    @raise Parse_error on malformed input. *)

val attr : t -> string -> string option
(** Attribute lookup on an element ([None] on [Text]). *)

val attr_exn : t -> string -> string
(** @raise Not_found when missing. *)

val children : t -> t list
(** Child elements (text nodes filtered out); [\[\]] on [Text]. *)

val name : t -> string
(** Element name; [""] for text. *)

val to_string : t -> string
(** Serialises with 2-space indentation and escaped attributes. *)
