(** MONTECARLO estimator: sample makespan realisations and average.

    The classical ground-truth method (van Slyke 1963): unbiased, with
    a [1/sqrt(trials)] error, but expensive — the paper uses 300,000
    trials to calibrate the other estimators and notes this is
    prohibitive in practice. *)

val estimate : ?trials:int -> ?seed:int -> Prob_dag.t -> float
(** Mean over [trials] (default 10_000) independent realisations. *)

val estimate_with_stats : ?trials:int -> ?seed:int -> Prob_dag.t -> Ckpt_prob.Stats.t
(** Full sample statistics (mean, variance, extremes, CI). *)
