(** Guaranteed bounds on the expected makespan of a 2-state DAG
    (extension): the estimators of Section II-B are approximations
    without direction guarantees; these brackets are sound.

    - {e Lower} (Fulkerson 1962 / Jensen): the deterministic longest
      path where every node lasts its {e expected} duration. Since the
      makespan is a convex (max-of-sums) function of the durations,
      [E max Σ >= max Σ E].
    - {e Upper} (Kleindorfer 1971): the forward distribution sweep
      that treats the operands of every max as independent. Completion
      times of a node-weighted DAG are positively associated
      (Esary–Proschan), so [P(max <= x)] is {e over}-estimated by the
      product of CDFs and the resulting expectation over-estimates the
      true one. Computed by {!Dodin} with a large support bound; the
      compaction keeps expectations exact, preserving the bound up to
      the bucketing of values inside maxima (negligible at the default
      support). *)

val lower : Prob_dag.t -> float
(** Fulkerson bound: longest path over expected durations. *)

val upper : ?max_support:int -> Prob_dag.t -> float
(** Kleindorfer bound via the independence sweep (default support
    2048). *)

val bracket : ?max_support:int -> Prob_dag.t -> float * float
(** [(lower, upper)]. *)
