(** DODIN estimator (Dodin 1985): approximation by series-parallel
    reduction over discrete distributions.

    The completion-time distribution of each node is computed bottom-up
    over a topological order: [completion(v) = duration(v) +
    max over preds completion(p)], with sums computed by convolution
    and maxima by CDF products, {e treating predecessor completions as
    independent}. This is exact on chains and on in-trees (where
    predecessor subtrees are disjoint) and Dodin's classical
    approximation elsewhere — shared ancestors, e.g. after a fork,
    correlate the operands of the max and bias it upward. Support
    sizes are bounded by adaptive compaction, giving a
    pseudo-polynomial running time. *)

val estimate : ?max_support:int -> Prob_dag.t -> float
(** Expected value of the final distribution. [max_support] bounds
    every intermediate support (default 256). *)

val distribution : ?max_support:int -> Prob_dag.t -> Ckpt_prob.Dist.t
(** The full approximate makespan distribution. *)
