module Dist = Ckpt_prob.Dist
module Mspg = Ckpt_mspg.Mspg

let distribution ?(max_support = 4096) tree ~node_dist =
  let compact d = Dist.compact ~max_size:max_support d in
  let rec fold = function
    | Mspg.Leaf id -> node_dist id
    | Mspg.Serial l ->
        List.fold_left
          (fun acc child ->
            match acc with
            | None -> Some (fold child)
            | Some d -> Some (compact (Dist.add d (fold child))))
          None l
        |> Option.get
    | Mspg.Parallel l ->
        List.fold_left
          (fun acc child ->
            match acc with
            | None -> Some (fold child)
            | Some d -> Some (compact (Dist.max2 d (fold child))))
          None l
        |> Option.get
  in
  fold tree

let estimate ?max_support tree ~node_dist =
  Dist.mean (distribution ?max_support tree ~node_dist)
