(** PATHAPPROX estimator: approximation via longest paths (Casanova,
    Herrmann, Robert 2016 — first-order variant).

    Under the paper's first-order failure model at most one degradation
    event matters per realisation, so the makespan expectation expands
    as

    [E(M) ~ L0 + sum_i pfail_i * (L(i) - L0)]

    where [L0] is the longest path with every node at its base value
    and [L(i)] the longest path when only node [i] is degraded. Each
    [L(i)] equals [max(L0, top(i) + degraded_i + bottom(i))] with
    [top]/[bottom] the longest in/out path lengths around [i], so the
    whole estimate costs three longest-path sweeps — O(m). This is the
    method the paper selects for its experiments (fast and closest to
    Monte Carlo). *)

val estimate : Prob_dag.t -> float
