(** NORMAL estimator (Sculli 1983).

    Propagates (mean, variance) pairs through the DAG under a normality
    assumption: the completion time of a node is
    [max over preds (completion) + duration], where the maximum of two
    normals is moment-matched back to a normal with Clark's formulas
    (predecessors treated as independent, Sculli's original
    assumption). Fast — O(m) Clark steps — but biased on graphs with
    strongly correlated paths. *)

val estimate : Prob_dag.t -> float
(** Estimated expected makespan. *)

val estimate_with_variance : Prob_dag.t -> float * float
(** (mean, variance) of the final normal approximation. *)
