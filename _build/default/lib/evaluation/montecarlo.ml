module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats

let estimate_with_stats ?(trials = 10_000) ?(seed = 1) dag =
  if trials < 1 then invalid_arg "Montecarlo.estimate: trials < 1";
  let rng = Rng.create seed in
  let stats = Stats.create () in
  for _ = 1 to trials do
    Stats.add stats (Prob_dag.sample dag rng)
  done;
  stats

let estimate ?trials ?seed dag = Stats.mean (estimate_with_stats ?trials ?seed dag)
