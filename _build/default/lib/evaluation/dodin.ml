module Dist = Ckpt_prob.Dist

let distribution ?(max_support = 256) dag =
  let n = Prob_dag.n_nodes dag in
  if n = 0 then Dist.constant 0.
  else begin
    let completion = Array.make n (Dist.constant 0.) in
    let order = Prob_dag.topological_order dag in
    let compact d = Dist.compact ~max_size:max_support d in
    Array.iter
      (fun u ->
        let ready =
          List.fold_left
            (fun acc p ->
              match acc with
              | None -> Some completion.(p)
              | Some d -> Some (compact (Dist.max2 d completion.(p))))
            None (Prob_dag.preds dag u)
        in
        let duration = Prob_dag.dist_of_node dag u in
        let total =
          match ready with
          | None -> duration
          | Some d -> compact (Dist.add d duration)
        in
        completion.(u) <- total)
      order;
    let final = ref None in
    for u = 0 to n - 1 do
      if Prob_dag.succs dag u = [] then
        final :=
          Some
            (match !final with
            | None -> completion.(u)
            | Some d -> compact (Dist.max2 d completion.(u)))
    done;
    match !final with None -> Dist.constant 0. | Some d -> d
  end

let estimate ?max_support dag = Dist.mean (distribution ?max_support dag)
