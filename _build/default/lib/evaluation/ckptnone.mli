(** CKPTNONE expected-makespan estimate (Theorem 1).

    Computing the expected makespan of an unchekpointed schedule is
    #P-complete (Section V); the paper therefore evaluates CKPTNONE
    with the closed-form first-order estimate

    [EM = (1 - p λ Wpar) Wpar + p λ Wpar (3/2 Wpar)]

    where [Wpar] is the failure-free parallel time of the schedule and
    [p] the number of processors: with probability [p λ Wpar] a single
    failure hits one of the [p] processors during the run, the whole
    workflow restarts from scratch, and the expected lost time is
    [Wpar / 2]. *)

val expected_makespan : wpar:float -> processors:int -> lambda:float -> float
(** @raise Invalid_argument on negative [wpar] or [lambda] or
    non-positive [processors]. *)

val expected_makespan_rate : wpar:float -> rate:float -> float
(** Same estimate parameterised directly by the aggregate failure
    rate [rate = Σ λ_p] — the natural form for heterogeneous
    platforms. *)
