module Rng = Ckpt_prob.Rng
module Dist = Ckpt_prob.Dist

type node = { base : float; degraded : float; pfail : float }

type entry = { nd : node; mutable out_ : int list; mutable in_ : int list }

type t = { mutable entries : entry array; mutable n : int }

let create () = { entries = [||]; n = 0 }

let add_node t ~base ~degraded ~pfail =
  if base < 0. || degraded < base then invalid_arg "Prob_dag.add_node: need 0 <= base <= degraded";
  if pfail < 0. || pfail > 1. then invalid_arg "Prob_dag.add_node: pfail not in [0,1]";
  let cap = Array.length t.entries in
  if t.n = cap then begin
    let fresh =
      Array.make (max 8 (2 * cap))
        { nd = { base = 0.; degraded = 0.; pfail = 0. }; out_ = []; in_ = [] }
    in
    Array.blit t.entries 0 fresh 0 t.n;
    t.entries <- fresh
  end;
  let id = t.n in
  t.entries.(id) <- { nd = { base; degraded; pfail }; out_ = []; in_ = [] };
  t.n <- t.n + 1;
  id

let check t i fn =
  if i < 0 || i >= t.n then invalid_arg (Printf.sprintf "Prob_dag.%s: unknown node %d" fn i)

let add_edge t u v =
  check t u "add_edge";
  check t v "add_edge";
  if u = v then invalid_arg "Prob_dag.add_edge: self-loop";
  if not (List.mem v t.entries.(u).out_) then begin
    t.entries.(u).out_ <- v :: t.entries.(u).out_;
    t.entries.(v).in_ <- u :: t.entries.(v).in_
  end

let n_nodes t = t.n

let node t i =
  check t i "node";
  t.entries.(i).nd

let succs t i =
  check t i "succs";
  t.entries.(i).out_

let preds t i =
  check t i "preds";
  t.entries.(i).in_

let topological_order t =
  let indeg = Array.init t.n (fun i -> List.length t.entries.(i).in_) in
  let order = Array.make t.n (-1) in
  let stack = ref [] in
  for i = t.n - 1 downto 0 do
    if indeg.(i) = 0 then stack := i :: !stack
  done;
  let k = ref 0 in
  let rec drain () =
    match !stack with
    | [] -> ()
    | u :: rest ->
        stack := rest;
        order.(!k) <- u;
        incr k;
        List.iter
          (fun v ->
            indeg.(v) <- indeg.(v) - 1;
            if indeg.(v) = 0 then stack := v :: !stack)
          t.entries.(u).out_;
        drain ()
  in
  drain ();
  if !k <> t.n then invalid_arg "Prob_dag.topological_order: cycle";
  order

let expected_work t =
  let acc = ref 0. in
  for i = 0 to t.n - 1 do
    let nd = t.entries.(i).nd in
    acc := !acc +. ((1. -. nd.pfail) *. nd.base) +. (nd.pfail *. nd.degraded)
  done;
  !acc

let longest_path_with t f =
  let order = topological_order t in
  let dist = Array.make t.n 0. in
  let best = ref 0. in
  Array.iter
    (fun u ->
      let d = dist.(u) +. f u in
      if d > !best then best := d;
      List.iter (fun v -> if d > dist.(v) then dist.(v) <- d) t.entries.(u).out_)
    order;
  !best

let deterministic_makespan t = longest_path_with t (fun i -> t.entries.(i).nd.base)

let sample t rng =
  longest_path_with t (fun i ->
      let nd = t.entries.(i).nd in
      if nd.pfail > 0. && Rng.uniform rng < nd.pfail then nd.degraded else nd.base)

let dist_of_node t i =
  let nd = (node t i) in
  Dist.two_state ~p:nd.pfail nd.base nd.degraded
