let expected_makespan_rate ~wpar ~rate =
  if wpar < 0. then invalid_arg "Ckptnone.expected_makespan: negative Wpar";
  if rate < 0. then invalid_arg "Ckptnone.expected_makespan: negative rate";
  let pfail_run = rate *. wpar in
  ((1. -. pfail_run) *. wpar) +. (pfail_run *. (1.5 *. wpar))

let expected_makespan ~wpar ~processors ~lambda =
  if lambda < 0. then invalid_arg "Ckptnone.expected_makespan: negative lambda";
  if processors < 1 then invalid_arg "Ckptnone.expected_makespan: need processors >= 1";
  expected_makespan_rate ~wpar ~rate:(float_of_int processors *. lambda)
