let estimate dag =
  let n = Prob_dag.n_nodes dag in
  if n = 0 then 0.
  else begin
    let order = Prob_dag.topological_order dag in
    let base i = (Prob_dag.node dag i).Prob_dag.base in
    (* top.(i): longest base path ending right before i *)
    let top = Array.make n 0. in
    Array.iter
      (fun u ->
        let d = top.(u) +. base u in
        List.iter (fun v -> if d > top.(v) then top.(v) <- d) (Prob_dag.succs dag u))
      order;
    (* bottom.(i): longest base path starting right after i *)
    let bottom = Array.make n 0. in
    for k = n - 1 downto 0 do
      let u = order.(k) in
      List.iter
        (fun v ->
          let d = bottom.(v) +. base v in
          if d > bottom.(u) then bottom.(u) <- d)
        (Prob_dag.succs dag u)
    done;
    let l0 = ref 0. in
    for i = 0 to n - 1 do
      let through = top.(i) +. base i +. bottom.(i) in
      if through > !l0 then l0 := through
    done;
    let correction = ref 0. in
    for i = 0 to n - 1 do
      let nd = Prob_dag.node dag i in
      if nd.Prob_dag.pfail > 0. then begin
        let li = Float.max !l0 (top.(i) +. nd.Prob_dag.degraded +. bottom.(i)) in
        correction := !correction +. (nd.Prob_dag.pfail *. (li -. !l0))
      end
    done;
    !l0 +. !correction
  end
