(** Exact (pseudo-polynomial) makespan distribution on M-SPG-shaped
    2-state DAGs — Möhring's distribution calculus, an extension
    beyond the paper used here to validate the estimators.

    An M-SPG's makespan satisfies makespan(G1 ⨟ G2) = makespan(G1) +
    makespan(G2) (every source of G2 waits for every sink of G1) and
    makespan(G1 ‖ G2) = max of the two, with the operands independent
    — so a fold over the decomposition tree with convolutions and
    CDF-product maxima computes the {e exact} distribution. Support
    grows exponentially in the worst case (the problem stays weakly
    NP-hard), hence the optional compaction bound; with [max_support =
    max_int] the result is exact. *)

val distribution :
  ?max_support:int ->
  Ckpt_mspg.Mspg.tree ->
  node_dist:(Ckpt_dag.Task.id -> Ckpt_prob.Dist.t) ->
  Ckpt_prob.Dist.t
(** Fold the tree; [node_dist] gives each leaf's duration
    distribution. [max_support] defaults to 4096. *)

val estimate :
  ?max_support:int ->
  Ckpt_mspg.Mspg.tree ->
  node_dist:(Ckpt_dag.Task.id -> Ckpt_prob.Dist.t) ->
  float
