(** 2-state probabilistic DAGs (Section II-B).

    Every node's duration is an independent random variable taking a
    [base] value with probability [1 - pfail] and a [degraded] value
    with probability [pfail]. Under the paper's first-order model a
    checkpointed task segment of total cost [S = R + W + C] on a
    processor of failure rate λ has [base = S], [degraded = 3/2 S] and
    [pfail = λ S] (Eq. 2). The makespan is the longest path (sum of
    node durations along a path, maximised over paths); computing its
    expectation exactly is #P-complete, hence the estimators in
    {!Montecarlo}, {!Dodin}, {!Sculli}, {!Pathapprox}. *)

type node = { base : float; degraded : float; pfail : float }

type t

val create : unit -> t

val add_node : t -> base:float -> degraded:float -> pfail:float -> int
(** @raise Invalid_argument unless [0 <= base <= degraded] and
    [0 <= pfail <= 1]. *)

val add_edge : t -> int -> int -> unit
(** Duplicate edges are silently ignored (they are semantically
    idempotent for longest paths). @raise Invalid_argument on unknown
    endpoints or self-loops. *)

val n_nodes : t -> int
val node : t -> int -> node
val succs : t -> int -> int list
val preds : t -> int -> int list
val topological_order : t -> int array
(** @raise Invalid_argument on cycles. *)

val expected_work : t -> float
(** Sum over nodes of the expected duration — a cheap sanity metric. *)

val longest_path_with : t -> (int -> float) -> float
(** Longest path when node [i] lasts [f i]. *)

val deterministic_makespan : t -> float
(** Longest path with every node at its [base] value. *)

val sample : t -> Ckpt_prob.Rng.t -> float
(** Draw one makespan realisation (independent node states). *)

val dist_of_node : t -> int -> Ckpt_prob.Dist.t
(** The node's two-point duration distribution. *)
