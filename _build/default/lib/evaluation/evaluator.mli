(** Uniform dispatch over the expected-makespan estimators of
    Section II-B. *)

type method_ =
  | Montecarlo of { trials : int; seed : int }
  | Dodin of { max_support : int }
  | Normal
  | Pathapprox

val default_montecarlo : method_
(** 10_000 trials, seed 1. *)

val calibration_montecarlo : method_
(** 300_000 trials (the paper's ground-truth setting), seed 1. *)

val all_fast : method_ list
(** The three non-Monte-Carlo estimators. *)

val name : method_ -> string
val of_name : string -> method_ option
val estimate : method_ -> Prob_dag.t -> float
