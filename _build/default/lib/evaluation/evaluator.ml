type method_ =
  | Montecarlo of { trials : int; seed : int }
  | Dodin of { max_support : int }
  | Normal
  | Pathapprox

let default_montecarlo = Montecarlo { trials = 10_000; seed = 1 }
let calibration_montecarlo = Montecarlo { trials = 300_000; seed = 1 }
let all_fast = [ Dodin { max_support = 256 }; Normal; Pathapprox ]

let name = function
  | Montecarlo _ -> "montecarlo"
  | Dodin _ -> "dodin"
  | Normal -> "normal"
  | Pathapprox -> "pathapprox"

let of_name s =
  match String.lowercase_ascii s with
  | "montecarlo" | "mc" -> Some default_montecarlo
  | "dodin" -> Some (Dodin { max_support = 256 })
  | "normal" | "sculli" -> Some Normal
  | "pathapprox" | "path" -> Some Pathapprox
  | _ -> None

let estimate method_ dag =
  match method_ with
  | Montecarlo { trials; seed } -> Montecarlo.estimate ~trials ~seed dag
  | Dodin { max_support } -> Dodin.estimate ~max_support dag
  | Normal -> Sculli.estimate dag
  | Pathapprox -> Pathapprox.estimate dag
