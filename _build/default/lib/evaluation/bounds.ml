let lower dag =
  Prob_dag.longest_path_with dag (fun i ->
      let nd = Prob_dag.node dag i in
      ((1. -. nd.Prob_dag.pfail) *. nd.Prob_dag.base)
      +. (nd.Prob_dag.pfail *. nd.Prob_dag.degraded))

let upper ?(max_support = 2048) dag = Dodin.estimate ~max_support dag

let bracket ?max_support dag = (lower dag, upper ?max_support dag)
