lib/evaluation/montecarlo.mli: Ckpt_prob Prob_dag
