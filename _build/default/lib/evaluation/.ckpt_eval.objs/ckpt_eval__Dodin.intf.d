lib/evaluation/dodin.mli: Ckpt_prob Prob_dag
