lib/evaluation/evaluator.ml: Dodin Montecarlo Pathapprox Sculli String
