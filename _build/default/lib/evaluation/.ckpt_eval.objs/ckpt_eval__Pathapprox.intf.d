lib/evaluation/pathapprox.mli: Prob_dag
