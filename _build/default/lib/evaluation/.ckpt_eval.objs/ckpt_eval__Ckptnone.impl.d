lib/evaluation/ckptnone.ml:
