lib/evaluation/prob_dag.mli: Ckpt_prob
