lib/evaluation/sculli.ml: Array Ckpt_prob List Prob_dag
