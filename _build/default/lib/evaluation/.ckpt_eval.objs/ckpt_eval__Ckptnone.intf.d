lib/evaluation/ckptnone.mli:
