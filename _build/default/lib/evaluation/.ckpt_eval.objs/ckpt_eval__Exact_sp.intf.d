lib/evaluation/exact_sp.mli: Ckpt_dag Ckpt_mspg Ckpt_prob
