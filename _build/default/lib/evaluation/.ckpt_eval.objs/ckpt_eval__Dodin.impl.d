lib/evaluation/dodin.ml: Array Ckpt_prob List Prob_dag
