lib/evaluation/bounds.mli: Prob_dag
