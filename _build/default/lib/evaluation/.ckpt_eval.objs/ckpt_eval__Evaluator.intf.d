lib/evaluation/evaluator.mli: Prob_dag
