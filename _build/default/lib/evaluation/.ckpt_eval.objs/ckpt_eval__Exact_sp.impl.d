lib/evaluation/exact_sp.ml: Ckpt_mspg Ckpt_prob List Option
