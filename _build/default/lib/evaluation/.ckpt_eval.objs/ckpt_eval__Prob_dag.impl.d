lib/evaluation/prob_dag.ml: Array Ckpt_prob List Printf
