lib/evaluation/bounds.ml: Dodin Prob_dag
