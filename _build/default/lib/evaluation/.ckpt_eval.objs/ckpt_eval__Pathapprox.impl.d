lib/evaluation/pathapprox.ml: Array Float List Prob_dag
