lib/evaluation/montecarlo.ml: Ckpt_prob Prob_dag
