lib/evaluation/sculli.mli: Prob_dag
