module Normal = Ckpt_prob.Normal

let node_moments (nd : Prob_dag.node) =
  let mean = ((1. -. nd.pfail) *. nd.base) +. (nd.pfail *. nd.degraded) in
  let dev = nd.degraded -. nd.base in
  let var = nd.pfail *. (1. -. nd.pfail) *. dev *. dev in
  (mean, var)

let estimate_with_variance dag =
  let n = Prob_dag.n_nodes dag in
  let completion = Array.make n (0., 0.) in
  let order = Prob_dag.topological_order dag in
  let clark_fold acc (m, v) =
    match acc with
    | None -> Some (m, v)
    | Some (m0, v0) -> Some (Normal.clark_max ~mean1:m0 ~var1:v0 ~mean2:m ~var2:v ~rho:0.)
  in
  Array.iter
    (fun u ->
      let ready =
        List.fold_left
          (fun acc p -> clark_fold acc completion.(p))
          None (Prob_dag.preds dag u)
      in
      let rm, rv = match ready with None -> (0., 0.) | Some mv -> mv in
      let dm, dv = node_moments (Prob_dag.node dag u) in
      completion.(u) <- (rm +. dm, rv +. dv))
    order;
  let final = ref None in
  for u = 0 to n - 1 do
    if Prob_dag.succs dag u = [] then final := clark_fold !final completion.(u)
  done;
  match !final with None -> (0., 0.) | Some mv -> mv

let estimate dag = fst (estimate_with_variance dag)
