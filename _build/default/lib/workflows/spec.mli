(** Uniform access to the workflow families.

    GENOME, MONTAGE and LIGO are the three families of the paper's
    evaluation; CYBERSHAKE and SIPHT extend the study to the remaining
    Pegasus characterisation-suite applications. *)

type kind = Genome | Montage | Ligo | Cybershake | Sipht

val paper : kind list
(** The families used in the paper's Figures 5-7. *)

val all : kind list
(** Every implemented family (paper + extensions). *)

val name : kind -> string
val of_name : string -> kind option

val generate : kind -> ?seed:int -> tasks:int -> unit -> Ckpt_dag.Dag.t
(** Dispatches to the family's generator. *)

val ccr : Ckpt_dag.Dag.t -> bandwidth:float -> float
(** The paper's Communication-to-Computation Ratio: time to store every
    file the workflow handles (input, output, intermediate) divided by
    the total single-processor computation time. *)
