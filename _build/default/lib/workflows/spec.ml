module Dag = Ckpt_dag.Dag

type kind = Genome | Montage | Ligo | Cybershake | Sipht

let paper = [ Genome; Montage; Ligo ]
let all = [ Genome; Montage; Ligo; Cybershake; Sipht ]

let name = function
  | Genome -> "genome"
  | Montage -> "montage"
  | Ligo -> "ligo"
  | Cybershake -> "cybershake"
  | Sipht -> "sipht"

let of_name s =
  match String.lowercase_ascii s with
  | "genome" | "epigenomics" -> Some Genome
  | "montage" -> Some Montage
  | "ligo" | "inspiral" -> Some Ligo
  | "cybershake" -> Some Cybershake
  | "sipht" -> Some Sipht
  | _ -> None

let generate kind ?seed ~tasks () =
  match kind with
  | Genome -> Genome.generate ?seed ~tasks ()
  | Montage -> Montage.generate ?seed ~tasks ()
  | Ligo -> Ligo.generate ?seed ~tasks ()
  | Cybershake -> Cybershake.generate ?seed ~tasks ()
  | Sipht -> Sipht.generate ?seed ~tasks ()

let ccr dag ~bandwidth = Dag.total_data dag /. bandwidth /. Dag.total_weight dag
