lib/workflows/random_wf.ml: Array Ckpt_mspg Ckpt_prob Printf
