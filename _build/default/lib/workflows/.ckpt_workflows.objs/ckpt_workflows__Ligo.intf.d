lib/workflows/ligo.mli: Ckpt_dag
