lib/workflows/generator.mli: Ckpt_prob
