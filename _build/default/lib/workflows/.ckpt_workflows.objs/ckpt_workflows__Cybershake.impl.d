lib/workflows/cybershake.ml: Ckpt_dag Generator Printf
