lib/workflows/ligo.ml: Array Ckpt_dag Ckpt_prob Generator Printf
