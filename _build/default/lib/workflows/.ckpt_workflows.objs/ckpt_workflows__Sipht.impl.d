lib/workflows/sipht.ml: Ckpt_dag Generator List Printf
