lib/workflows/random_wf.mli: Ckpt_mspg Ckpt_prob
