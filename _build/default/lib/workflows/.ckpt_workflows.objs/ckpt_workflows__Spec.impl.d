lib/workflows/spec.ml: Ckpt_dag Cybershake Genome Ligo Montage Sipht String
