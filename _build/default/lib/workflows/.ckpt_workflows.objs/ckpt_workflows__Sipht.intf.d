lib/workflows/sipht.mli: Ckpt_dag
