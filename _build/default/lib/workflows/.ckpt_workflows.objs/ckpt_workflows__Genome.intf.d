lib/workflows/genome.mli: Ckpt_dag
