lib/workflows/montage.ml: Array Ckpt_dag Generator Printf
