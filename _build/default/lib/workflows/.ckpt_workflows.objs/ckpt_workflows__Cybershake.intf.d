lib/workflows/cybershake.mli: Ckpt_dag
