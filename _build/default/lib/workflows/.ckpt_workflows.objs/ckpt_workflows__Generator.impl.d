lib/workflows/generator.ml: Ckpt_prob
