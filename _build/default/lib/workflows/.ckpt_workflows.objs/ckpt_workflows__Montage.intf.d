lib/workflows/montage.mli: Ckpt_dag
