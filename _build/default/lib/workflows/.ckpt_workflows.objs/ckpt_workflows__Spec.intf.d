lib/workflows/spec.mli: Ckpt_dag
