lib/workflows/genome.ml: Ckpt_dag Generator List Printf
