(** Shared machinery for the synthetic Pegasus-like generators.

    The paper uses the Pegasus Workflow Generator (PWG), which samples
    task runtimes and file sizes from profiles of real executions
    (Bharathi et al. 2008, Juve et al. 2013). We reproduce that recipe:
    every task type has a mean runtime and every file a mean size, and
    individual values are drawn from a truncated normal with a fixed
    coefficient of variation, from a seeded deterministic stream. The
    absolute scale of file sizes is immaterial to the experiments — the
    CCR sweep renormalises them — but realistic ratios between task
    types are preserved. *)

type t
(** Sampling context. *)

val create : seed:int -> t

val runtime : t -> mean:float -> float
(** Runtime draw: truncated normal, cv = 0.2, floored at 5% of mean. *)

val filesize : t -> mean:float -> float
(** File-size draw: truncated normal, cv = 0.3, floored at 1% of mean. *)

val rng : t -> Ckpt_prob.Rng.t

val fit_count : target:int -> count_of:(int -> int) -> lo:int -> hi:int -> int
(** [fit_count ~target ~count_of ~lo ~hi] is the parameter in
    [\[lo, hi\]] whose [count_of] is closest to [target] (ties towards
    smaller parameter) — used to size each workflow family to "about
    n tasks" like PWG's task-count knob. *)
