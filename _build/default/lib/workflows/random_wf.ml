module Rng = Ckpt_prob.Rng
module Mspg = Ckpt_mspg.Mspg

let blueprint rng ~max_tasks =
  if max_tasks < 1 then invalid_arg "Random_wf.blueprint: max_tasks < 1";
  let counter = ref 0 in
  let fresh_task () =
    incr counter;
    Mspg.Btask (Printf.sprintf "t%d" !counter, 0.5 +. Rng.float rng 49.5)
  in
  (* [grow budget depth] returns a blueprint using at most [budget]
     tasks (>= 1). Deeper levels are increasingly likely to emit
     atomic tasks so trees stay shallow-ish. *)
  let rec grow budget depth =
    if budget <= 1 || depth > 5 || Rng.float rng 1.0 < 0.25 +. (0.15 *. float_of_int depth)
    then fresh_task ()
    else begin
      let n_children = 2 + Rng.int rng (min 4 budget - 1) in
      let shares = Array.make n_children 1 in
      let remaining = ref (budget - n_children) in
      while !remaining > 0 do
        let k = Rng.int rng n_children in
        let take = 1 + Rng.int rng !remaining in
        shares.(k) <- shares.(k) + take;
        remaining := !remaining - take
      done;
      let children =
        Array.to_list (Array.map (fun b -> grow b (depth + 1)) shares)
      in
      if Rng.bool rng then Mspg.Bserial children else Mspg.Bparallel children
    end
  in
  grow max_tasks 0

let generate ?(seed = 42) ~max_tasks () =
  let rng = Rng.create seed in
  let bp = blueprint rng ~max_tasks in
  let edge_rng = Rng.split rng in
  Mspg.build ~name:"random-mspg"
    ~edge_size:(fun _ _ -> 1e5 +. Rng.float edge_rng (1e8 -. 1e5))
    bp
