module Dag = Ckpt_dag.Dag

let mb = 1_000_000.

(* Juve et al. 2013, Epigenomics profile (rounded means). *)
let rt_split = 35.
let rt_filter = 2.4
let rt_sol2sanger = 0.5
let rt_fastq2bfq = 1.4
let rt_map = 201.
let rt_mapmerge = 11.
let rt_maqindex = 43.
let rt_pileup = 56.
let sz_lane_input = 400. *. mb
let sz_chunk = 25. *. mb
let sz_filtered = 20. *. mb
let sz_sanger = 20. *. mb
let sz_bfq = 6. *. mb
let sz_mapped = 5. *. mb
let sz_merged = 60. *. mb
let sz_index = 25. *. mb
let sz_pileup = 100. *. mb

let lane_task_count m = (4 * m) + 2

let total_count l m = if l = 1 then lane_task_count m + 2 else (l * lane_task_count m) + 3

let pick_shape tasks =
  (* one lane up to ~100 tasks, then grow lanes with chunks *)
  let candidates = ref [] in
  for l = 1 to 12 do
    let m =
      Generator.fit_count ~target:tasks ~count_of:(fun m -> total_count l m) ~lo:1 ~hi:2000
    in
    candidates := (abs (total_count l m - tasks), l, m) :: !candidates
  done;
  (* prefer fewer lanes on ties, and keep chunk counts plausible
     (PWG lanes have tens of chunks, not thousands) *)
  let scored =
    List.map
      (fun (err, l, m) ->
        let penalty = if m > 120 then (m - 120) / 4 else 0 in
        (err + penalty, l, m))
      !candidates
  in
  let _, l, m =
    List.fold_left (fun (e0, l0, m0) (e, l, m) ->
        if e < e0 || (e = e0 && l < l0) then (e, l, m) else (e0, l0, m0))
      (max_int, 1, 1) scored
  in
  (l, m)

let generate ?(seed = 42) ~tasks () =
  if tasks < 6 then invalid_arg "Genome.generate: needs at least 6 tasks";
  let g = Generator.create ~seed in
  let l, m = pick_shape tasks in
  let dag = Dag.create ~name:(Printf.sprintf "genome-%d" tasks) () in
  let chain_through lane_split =
    (* one chunk pipeline: filter -> sol2sanger -> fastq2bfq -> map *)
    let filter = Dag.add_task dag ~name:"filterContams" ~weight:(Generator.runtime g ~mean:rt_filter) in
    Dag.add_edge dag lane_split filter (Generator.filesize g ~mean:sz_chunk);
    let sanger = Dag.add_task dag ~name:"sol2sanger" ~weight:(Generator.runtime g ~mean:rt_sol2sanger) in
    Dag.add_edge dag filter sanger (Generator.filesize g ~mean:sz_filtered);
    let bfq = Dag.add_task dag ~name:"fastq2bfq" ~weight:(Generator.runtime g ~mean:rt_fastq2bfq) in
    Dag.add_edge dag sanger bfq (Generator.filesize g ~mean:sz_sanger);
    let map = Dag.add_task dag ~name:"map" ~weight:(Generator.runtime g ~mean:rt_map) in
    Dag.add_edge dag bfq map (Generator.filesize g ~mean:sz_bfq);
    map
  in
  let lane () =
    let split = Dag.add_task dag ~name:"fastQSplit" ~weight:(Generator.runtime g ~mean:rt_split) in
    Dag.add_input dag split (Generator.filesize g ~mean:sz_lane_input);
    let merge = Dag.add_task dag ~name:"mapMerge" ~weight:(Generator.runtime g ~mean:rt_mapmerge) in
    for _ = 1 to m do
      let map = chain_through split in
      Dag.add_edge dag map merge (Generator.filesize g ~mean:sz_mapped)
    done;
    merge
  in
  let last_merge =
    if l = 1 then lane ()
    else begin
      let lane_merges = List.init l (fun _ -> lane ()) in
      let global = Dag.add_task dag ~name:"mapMergeGlobal" ~weight:(Generator.runtime g ~mean:rt_mapmerge) in
      List.iter
        (fun lm -> Dag.add_edge dag lm global (Generator.filesize g ~mean:sz_merged))
        lane_merges;
      global
    end
  in
  let index = Dag.add_task dag ~name:"maqIndex" ~weight:(Generator.runtime g ~mean:rt_maqindex) in
  Dag.add_edge dag last_merge index (Generator.filesize g ~mean:sz_merged);
  let pileup = Dag.add_task dag ~name:"pileup" ~weight:(Generator.runtime g ~mean:rt_pileup) in
  Dag.add_edge dag index pileup (Generator.filesize g ~mean:sz_index);
  ignore (Dag.add_file dag ~producer:pileup ~size:(Generator.filesize g ~mean:sz_pileup));
  dag
