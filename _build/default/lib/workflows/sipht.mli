(** SIPHT sRNA-identification workflow generator (an extension beyond
    the paper's three families — SIPHT belongs to the same Pegasus
    characterisation suite).

    Structure (Bharathi et al. 2008, arranged as an M-SPG): the search
    is replicated over [r] independent {e candidate sub-workflows} run
    in parallel. Each sub-workflow fans out into heterogeneous
    analysis branches — a [Patser -> ... -> Patser_concate] chain
    block plus the [Transterm], [Findterm], [RNAMotif] and [Blast]
    single-task branches — joins at [SRNA], fans out again into five
    secondary [Blast*/FFN_parse] analyses, and finishes with
    [SRNA_annotate]. Findterm dominates the runtime (~10 min), making
    SIPHT strongly imbalanced across branches — a stress test for
    PROPMAP's proportional allocation.

    Task count per sub-workflow: [m + 12]; [generate ~tasks] picks
    [(r, m)]. *)

val generate : ?seed:int -> tasks:int -> unit -> Ckpt_dag.Dag.t
