module Dag = Ckpt_dag.Dag

let mb = 1_000_000.

(* Juve et al. 2013, SIPHT profile (rounded means). *)
let rt_patser = 0.96
let rt_patser_concate = 0.03
let rt_transterm = 32.
let rt_findterm = 594.
let rt_rnamotif = 12.
let rt_blast = 3.3
let rt_srna = 12.
let rt_ffn_parse = 0.3
let rt_blast_synteny = 3.7
let rt_blast_candidate = 0.6
let rt_blast_qrna = 40.
let rt_blast_paralogues = 0.7
let rt_annotate = 0.14
let sz_genome = 8. *. mb
let sz_patser_out = 0.05 *. mb
let sz_branch_out = 1.5 *. mb
let sz_srna_out = 2. *. mb
let sz_secondary = 0.5 *. mb
let sz_annotation = 0.3 *. mb

let sub_count m = m + 12
let total_count r m = r * sub_count m

let pick_shape tasks =
  let best = ref (max_int, 1, 1) in
  for r = 1 to 40 do
    let m =
      Generator.fit_count ~target:tasks ~count_of:(fun m -> total_count r m) ~lo:1 ~hi:500
    in
    let err = abs (total_count r m - tasks) in
    (* PWG uses a couple dozen Patser tasks per sub-workflow *)
    let penalty = if m > 40 then m - 40 else 0 in
    let s0, _, _ = !best in
    if err + penalty < s0 then best := (err + penalty, r, m)
  done;
  let _, r, m = !best in
  (r, m)

let generate ?(seed = 42) ~tasks () =
  if tasks < 13 then invalid_arg "Sipht.generate: needs at least 13 tasks";
  let g = Generator.create ~seed in
  let r, m = pick_shape tasks in
  let dag = Dag.create ~name:(Printf.sprintf "sipht-%d" tasks) () in
  let sub () =
    let srna = Dag.add_task dag ~name:"SRNA" ~weight:(Generator.runtime g ~mean:rt_srna) in
    (* patser block: m parallel pattern searches concatenated *)
    let concate =
      Dag.add_task dag ~name:"Patser_concate"
        ~weight:(Generator.runtime g ~mean:rt_patser_concate)
    in
    for _ = 1 to m do
      let patser = Dag.add_task dag ~name:"Patser" ~weight:(Generator.runtime g ~mean:rt_patser) in
      Dag.add_input dag patser (Generator.filesize g ~mean:sz_genome);
      Dag.add_edge dag patser concate (Generator.filesize g ~mean:sz_patser_out)
    done;
    Dag.add_edge dag concate srna (Generator.filesize g ~mean:sz_branch_out);
    (* single-task analysis branches *)
    List.iter
      (fun (name, mean) ->
        let t = Dag.add_task dag ~name ~weight:(Generator.runtime g ~mean) in
        Dag.add_input dag t (Generator.filesize g ~mean:sz_genome);
        Dag.add_edge dag t srna (Generator.filesize g ~mean:sz_branch_out))
      [ ("Transterm", rt_transterm); ("Findterm", rt_findterm); ("RNAMotif", rt_rnamotif);
        ("Blast", rt_blast) ];
    (* the SRNA verdict is one shared file consumed by the secondary
       analyses *)
    let verdict = Dag.add_file dag ~producer:srna ~size:(Generator.filesize g ~mean:sz_srna_out) in
    let annotate =
      Dag.add_task dag ~name:"SRNA_annotate" ~weight:(Generator.runtime g ~mean:rt_annotate)
    in
    List.iter
      (fun (name, mean) ->
        let t = Dag.add_task dag ~name ~weight:(Generator.runtime g ~mean) in
        Dag.add_edge dag ~file:verdict srna t 0.;
        Dag.add_edge dag t annotate (Generator.filesize g ~mean:sz_secondary))
      [ ("FFN_parse", rt_ffn_parse); ("Blast_synteny", rt_blast_synteny);
        ("Blast_candidate", rt_blast_candidate); ("Blast_QRNA", rt_blast_qrna);
        ("Blast_paralogues", rt_blast_paralogues) ];
    ignore (Dag.add_file dag ~producer:annotate ~size:(Generator.filesize g ~mean:sz_annotation))
  in
  for _ = 1 to r do
    sub ()
  done;
  dag
