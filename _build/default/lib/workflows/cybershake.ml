module Dag = Ckpt_dag.Dag

let mb = 1_000_000.

(* Juve et al. 2013, CyberShake profile (rounded means). *)
let rt_extract = 110.
let rt_seismogram = 48.
let rt_peakval = 1.2
let rt_zipseis = 35.
let rt_zippeak = 10.
let sz_sgt_variation = 500. *. mb (* initial SGT slice read by ExtractSGT *)
let sz_sgt = 300. *. mb (* extracted subtensor, broadcast to the site's chains *)
let sz_seismogram = 0.25 *. mb
let sz_peak = 0.01 *. mb
let sz_zip = 30. *. mb

(* per site: 1 ExtractSGT + m chains of 2 tasks; + 2 global zips *)
let total_count sites m = (sites * ((2 * m) + 1)) + 2

let pick_shape tasks =
  let best = ref (max_int, 1, 1) in
  for sites = 1 to 20 do
    let m =
      Generator.fit_count ~target:tasks
        ~count_of:(fun m -> total_count sites m)
        ~lo:1 ~hi:1000
    in
    let err = abs (total_count sites m - tasks) in
    (* PWG sites carry a few dozen chains; favour growing sites *)
    let penalty = if m > 32 then m - 32 else 0 in
    let s0, _, _ = !best in
    if err + penalty < s0 then best := (err + penalty, sites, m)
  done;
  let _, sites, m = !best in
  (sites, m)

let generate ?(seed = 42) ~tasks () =
  if tasks < 5 then invalid_arg "Cybershake.generate: needs at least 5 tasks";
  let g = Generator.create ~seed in
  let sites, m = pick_shape tasks in
  let dag = Dag.create ~name:(Printf.sprintf "cybershake-%d" tasks) () in
  let zipseis = Dag.add_task dag ~name:"ZipSeismograms" ~weight:(Generator.runtime g ~mean:rt_zipseis) in
  let zippeak = Dag.add_task dag ~name:"ZipPeakSA" ~weight:(Generator.runtime g ~mean:rt_zippeak) in
  for _ = 1 to sites do
    let extract =
      Dag.add_task dag ~name:"ExtractSGT" ~weight:(Generator.runtime g ~mean:rt_extract)
    in
    Dag.add_input dag extract (Generator.filesize g ~mean:sz_sgt_variation);
    (* the extracted subtensor is one shared file read by all chains *)
    let sgt = Dag.add_file dag ~producer:extract ~size:(Generator.filesize g ~mean:sz_sgt) in
    for _ = 1 to m do
      let seis =
        Dag.add_task dag ~name:"SeismogramSynthesis"
          ~weight:(Generator.runtime g ~mean:rt_seismogram)
      in
      Dag.add_edge dag ~file:sgt extract seis 0.;
      let peak =
        Dag.add_task dag ~name:"PeakValCalcOkaya" ~weight:(Generator.runtime g ~mean:rt_peakval)
      in
      (* the peak task forwards the seismogram alongside its own
         output (see the interface documentation) *)
      Dag.add_edge dag seis peak (Generator.filesize g ~mean:sz_seismogram);
      let seis_fwd = Dag.add_file dag ~producer:peak ~size:(Generator.filesize g ~mean:sz_seismogram) in
      let peaks = Dag.add_file dag ~producer:peak ~size:(Generator.filesize g ~mean:sz_peak) in
      Dag.add_edge dag ~file:seis_fwd peak zipseis 0.;
      Dag.add_edge dag ~file:peaks peak zippeak 0.
    done
  done;
  ignore (Dag.add_file dag ~producer:zipseis ~size:(Generator.filesize g ~mean:sz_zip));
  ignore (Dag.add_file dag ~producer:zippeak ~size:(Generator.filesize g ~mean:sz_zip));
  dag
