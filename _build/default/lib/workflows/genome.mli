(** GENOME (Epigenomics) workflow generator.

    Structure (Bharathi et al. 2008): the genome is processed in [l]
    lanes; each lane splits its read file into [m] chunks
    ([fastQSplit]), pipes every chunk through the 4-stage chain
    [filterContams -> sol2sanger -> fastq2bfq -> map], and merges the
    mapped chunks ([mapMerge]). Lanes merge globally, then [maqIndex]
    and [pileup] finish the pipeline. The result is a fork-join M-SPG
    — the recogniser accepts it without any completion.

    Task count: [l*(4m + 2) + 3] for [l > 1] lanes, [4m + 4] for one
    lane; [generate ~tasks] picks [(l, m)] to approach [tasks].

    Runtime and file-size scales follow the Epigenomics profiles of
    Juve et al. 2013 (map dominates at ~200 s; chunk files of tens of
    MB). *)

val generate : ?seed:int -> tasks:int -> unit -> Ckpt_dag.Dag.t
