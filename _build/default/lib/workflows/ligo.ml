module Dag = Ckpt_dag.Dag
module Rng = Ckpt_prob.Rng

let mb = 1_000_000.

(* Juve et al. 2013, Inspiral profile (rounded means). *)
let rt_tmpltbank = 18.
let rt_inspiral = 460.
let rt_thinca = 5.4
let rt_trigbank = 5.
let rt_inspiral2 = 460.
let sz_raw = 2.2 *. mb
let sz_bank = 1.0 *. mb
let sz_inspiral_out = 0.3 *. mb
let sz_thinca_out = 0.9 *. mb
let sz_trig_out = 1.0 *. mb

let group_count g = (4 * g) + 2
let total_count groups g = groups * group_count g

let pick_shape tasks =
  let best = ref (max_int, 1, 1) in
  for groups = 1 to 16 do
    let g =
      Generator.fit_count ~target:tasks
        ~count_of:(fun g -> total_count groups g)
        ~lo:2 ~hi:500
    in
    let err = abs (total_count groups g - tasks) in
    (* keep per-group widths realistic (PWG groups have ~5-30 chains) *)
    let penalty = if g > 40 then g - 40 else 0 in
    let score = err + penalty in
    let s0, _, _ = !best in
    if score < s0 then best := (score, groups, g)
  done;
  let _, groups, g = !best in
  (groups, g)

let generate ?(seed = 42) ?(cross_group = 0.4) ~tasks () =
  if tasks < 12 then invalid_arg "Ligo.generate: needs at least 12 tasks";
  let g_ctx = Generator.create ~seed in
  let rng = Generator.rng g_ctx in
  let groups, g = pick_shape tasks in
  let dag = Dag.create ~name:(Printf.sprintf "ligo-%d" tasks) () in
  (* first build every group's front half, remembering the thincas so
     cross-group edges can reference the neighbouring group *)
  let thinca1 =
    Array.init groups (fun _ ->
        let thinca = Dag.add_task dag ~name:"Thinca" ~weight:(Generator.runtime g_ctx ~mean:rt_thinca) in
        for _ = 1 to g do
          let bank =
            Dag.add_task dag ~name:"TmpltBank" ~weight:(Generator.runtime g_ctx ~mean:rt_tmpltbank)
          in
          Dag.add_input dag bank (Generator.filesize g_ctx ~mean:sz_raw);
          let insp =
            Dag.add_task dag ~name:"Inspiral" ~weight:(Generator.runtime g_ctx ~mean:rt_inspiral)
          in
          Dag.add_edge dag bank insp (Generator.filesize g_ctx ~mean:sz_bank);
          Dag.add_edge dag insp thinca (Generator.filesize g_ctx ~mean:sz_inspiral_out)
        done;
        thinca)
  in
  Array.iteri
    (fun gi thinca ->
      let crosses = groups > 1 && Rng.uniform rng < cross_group in
      let neighbour = thinca1.((gi + 1) mod groups) in
      let thinca2 = Dag.add_task dag ~name:"Thinca" ~weight:(Generator.runtime g_ctx ~mean:rt_thinca) in
      for k = 1 to g do
        let trig =
          Dag.add_task dag ~name:"TrigBank" ~weight:(Generator.runtime g_ctx ~mean:rt_trigbank)
        in
        Dag.add_edge dag thinca trig (Generator.filesize g_ctx ~mean:sz_thinca_out);
        (* odd-indexed TrigBanks of a crossing group also read the
           neighbouring Thinca: incomplete bipartite coupling *)
        if crosses && k mod 2 = 1 && neighbour <> thinca then
          Dag.add_edge dag neighbour trig (Generator.filesize g_ctx ~mean:sz_thinca_out);
        let insp2 =
          Dag.add_task dag ~name:"Inspiral2" ~weight:(Generator.runtime g_ctx ~mean:rt_inspiral2)
        in
        Dag.add_edge dag trig insp2 (Generator.filesize g_ctx ~mean:sz_trig_out);
        Dag.add_edge dag insp2 thinca2 (Generator.filesize g_ctx ~mean:sz_inspiral_out)
      done;
      ignore
        (Dag.add_file dag ~producer:thinca2 ~size:(Generator.filesize g_ctx ~mean:sz_thinca_out)))
    thinca1;
  dag
