module Rng = Ckpt_prob.Rng

type t = { rng : Rng.t }

let create ~seed = { rng = Rng.create seed }
let rng t = t.rng

let runtime t ~mean =
  Rng.truncated_normal t.rng ~mean ~stddev:(0.2 *. mean) ~lo:(0.05 *. mean)

let filesize t ~mean =
  Rng.truncated_normal t.rng ~mean ~stddev:(0.3 *. mean) ~lo:(0.01 *. mean)

let fit_count ~target ~count_of ~lo ~hi =
  if lo > hi then invalid_arg "Generator.fit_count: empty range";
  let best = ref lo and best_err = ref (abs (count_of lo - target)) in
  for k = lo + 1 to hi do
    let err = abs (count_of k - target) in
    if err < !best_err then begin
      best := k;
      best_err := err
    end
  done;
  !best
