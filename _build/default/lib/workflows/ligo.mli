(** LIGO Inspiral gravitational-wave analysis workflow generator.

    Structure (Bharathi et al. 2008): the analysis proceeds in [gG]
    groups. Each group runs [g] parallel [TmpltBank -> Inspiral]
    chains joined by a [Thinca] coincidence task, then fans out into
    [g] [TrigBank -> Inspiral2] chains joined by a second [Thinca].
    With groups fully independent this is a strict M-SPG
    (parallel composition of fork-join towers).

    Like PWG (paper footnote 2), the generator sometimes produces
    {e incomplete bipartite} couplings: a fraction of the [TrigBank]
    tasks additionally read the [Thinca] output of the neighbouring
    group (cross-group coincidence checks). Those instances are not
    M-SPGs; CKPTSOME processes the dummy-completed graph while the
    baselines process the raw one — exactly the paper's treatment.

    Task count [gG * (4g + 2)]; [generate ~tasks] picks [(gG, g)].

    Runtime/file-size scales follow the Inspiral profiles of Juve et
    al. 2013 ([Inspiral] dominates at ~460 s; files of ~1 MB). *)

val generate : ?seed:int -> ?cross_group:float -> tasks:int -> unit -> Ckpt_dag.Dag.t
(** [cross_group] is the probability that a group's [TrigBank] level
    reads the neighbouring group's first [Thinca] (default 0.4;
    0. yields a strict M-SPG). *)
