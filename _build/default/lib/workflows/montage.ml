module Dag = Ckpt_dag.Dag

let mb = 1_000_000.

(* Juve et al. 2013, Montage profile (rounded means). *)
let rt_project = 1.7
let rt_difffit = 0.7
let rt_concatfit = 143.
let rt_bgmodel = 384.
let rt_background = 1.7
let rt_imgtbl = 2.6
let rt_add = 63.
let rt_shrink = 66.
let rt_jpeg = 0.7
let sz_raw_image = 4.2 *. mb
let sz_projected = 8.1 *. mb
let sz_diff = 0.3 *. mb
let sz_concat = 1.0 *. mb
let sz_bgtable = 0.1 *. mb
let sz_corrected = 8.1 *. mb
let sz_imgtbl = 0.03 *. mb
let sz_mosaic = 165. *. mb
let sz_shrunk = 0.2 *. mb
let sz_jpeg = 0.1 *. mb

let total_count w = (3 * w) + 5

let generate ?(seed = 42) ~tasks () =
  if tasks < 11 then invalid_arg "Montage.generate: needs at least 11 tasks";
  let g = Generator.create ~seed in
  let w = Generator.fit_count ~target:tasks ~count_of:total_count ~lo:2 ~hi:4000 in
  let dag = Dag.create ~name:(Printf.sprintf "montage-%d" tasks) () in
  let projects =
    Array.init w (fun _ ->
        let t = Dag.add_task dag ~name:"mProjectPP" ~weight:(Generator.runtime g ~mean:rt_project) in
        Dag.add_input dag t (Generator.filesize g ~mean:sz_raw_image);
        t)
  in
  (* one output file per projection, shared by the overlap tasks *)
  let projected_file =
    Array.map
      (fun t -> Dag.add_file dag ~producer:t ~size:(Generator.filesize g ~mean:sz_projected))
      projects
  in
  let concat = Dag.add_task dag ~name:"mConcatFit" ~weight:(Generator.runtime g ~mean:rt_concatfit) in
  for i = 0 to w - 2 do
    let diff = Dag.add_task dag ~name:"mDiffFit" ~weight:(Generator.runtime g ~mean:rt_difffit) in
    Dag.add_edge dag ~file:projected_file.(i) projects.(i) diff 0.;
    Dag.add_edge dag ~file:projected_file.(i + 1) projects.(i + 1) diff 0.;
    Dag.add_edge dag diff concat (Generator.filesize g ~mean:sz_diff)
  done;
  let bgmodel = Dag.add_task dag ~name:"mBgModel" ~weight:(Generator.runtime g ~mean:rt_bgmodel) in
  Dag.add_edge dag concat bgmodel (Generator.filesize g ~mean:sz_concat);
  (* the background-correction table is broadcast: one shared file *)
  let bg_table = Dag.add_file dag ~producer:bgmodel ~size:(Generator.filesize g ~mean:sz_bgtable) in
  let imgtbl = Dag.add_task dag ~name:"mImgtbl" ~weight:(Generator.runtime g ~mean:rt_imgtbl) in
  for _ = 1 to w do
    let bg = Dag.add_task dag ~name:"mBackground" ~weight:(Generator.runtime g ~mean:rt_background) in
    Dag.add_edge dag ~file:bg_table bgmodel bg 0.;
    Dag.add_input dag bg (Generator.filesize g ~mean:sz_raw_image);
    Dag.add_edge dag bg imgtbl (Generator.filesize g ~mean:sz_corrected)
  done;
  let add = Dag.add_task dag ~name:"mAdd" ~weight:(Generator.runtime g ~mean:rt_add) in
  Dag.add_edge dag imgtbl add (Generator.filesize g ~mean:sz_imgtbl);
  let shrink = Dag.add_task dag ~name:"mShrink" ~weight:(Generator.runtime g ~mean:rt_shrink) in
  Dag.add_edge dag add shrink (Generator.filesize g ~mean:sz_mosaic);
  let jpeg = Dag.add_task dag ~name:"mJPEG" ~weight:(Generator.runtime g ~mean:rt_jpeg) in
  Dag.add_edge dag shrink jpeg (Generator.filesize g ~mean:sz_shrunk);
  ignore (Dag.add_file dag ~producer:jpeg ~size:(Generator.filesize g ~mean:sz_jpeg));
  dag
