(** MONTAGE astronomy-mosaic workflow generator.

    Structure (Bharathi et al. 2008): [w] input images are re-projected
    in parallel ([mProjectPP]); overlapping pairs of re-projections are
    compared ([mDiffFit], one task per overlap — we use the [w-1]
    consecutive overlaps of a strip mosaic); the fit results are
    concatenated ([mConcatFit]) and turned into a background model
    ([mBgModel]) whose single correction table is {e broadcast} to [w]
    [mBackground] tasks (a shared file: checkpointing saves it once);
    finally [mImgtbl -> mAdd -> mShrink -> mJPEG] assemble the mosaic.

    Task count [3w + 5]; [generate ~tasks] picks [w].

    The [mProjectPP -> mDiffFit] overlap block is an {e incomplete}
    bipartite graph, so the raw DAG is not an M-SPG: like the paper
    does for LIGO (footnote 2), CKPTSOME processes the dummy-completed
    graph while baseline strategies process the raw one.

    Runtime/file-size scales follow the Montage profiles of Juve et
    al. 2013 ([mConcatFit]/[mBgModel]/[mAdd] dominate runtime;
    projected images of a few MB dominate data). *)

val generate : ?seed:int -> tasks:int -> unit -> Ckpt_dag.Dag.t
