(** CYBERSHAKE seismic-hazard workflow generator (an extension beyond
    the paper's three families — CyberShake is part of the same
    Pegasus characterisation suite).

    Structure (Bharathi et al. 2008, simplified to an M-SPG): the
    hazard model is computed per {e site}; each site extracts two
    strain Green tensors ([ExtractSGT]) and runs [m] parallel
    [SeismogramSynthesis -> PeakValCalcOkaya] chains; two global zip
    tasks ([ZipSeismograms], [ZipPeakSA]) collect every chain's
    results. In the real application [ZipSeismograms] reads the
    seismograms directly from [SeismogramSynthesis] (a mid-chain
    producer, which no M-SPG can express); we model the peak
    calculator as forwarding the seismogram, a behaviour-preserving
    simplification documented in DESIGN.md. The result is a strict
    M-SPG: sites in parallel, complete bipartite into the two zips.

    CyberShake is the most data-intensive family here (hundreds of MB
    of SGT data per site against second-scale post-processing tasks),
    so it exercises the high-CCR corner of the trade-off. *)

val generate : ?seed:int -> tasks:int -> unit -> Ckpt_dag.Dag.t
