(** Random M-SPG workflows for property-based tests and ablations.

    Draws a random decomposition tree (biased towards realistic
    fork-join shapes), materialises the implied edges, and assigns
    random positive weights and file sizes. By construction the result
    is always a strict M-SPG. *)

val blueprint : Ckpt_prob.Rng.t -> max_tasks:int -> Ckpt_mspg.Mspg.blueprint
(** Random blueprint with at most [max_tasks] atomic tasks (at least 1). *)

val generate : ?seed:int -> max_tasks:int -> unit -> Ckpt_mspg.Mspg.t
(** Materialised random M-SPG (weights in [0.5, 50], sizes in
    [1e5, 1e8]). *)
