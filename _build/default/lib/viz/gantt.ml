module Engine = Ckpt_sim.Engine
module Strategy = Ckpt_core.Strategy
module Platform = Ckpt_platform.Platform
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng

(* qualitative palette for successful attempts, cycled per segment *)
let palette =
  [| "#4e79a7"; "#f28e2b"; "#59a14f"; "#b07aa1"; "#76b7b2"; "#edc948"; "#9c755f" |]

let margin_left = 70
let margin_top = 40
let margin_bottom = 30
let lane_gap = 6

let render ?(width = 1000) ?(lane_height = 28) ?(title = "execution") ~processors
    ~makespan records =
  if makespan <= 0. then invalid_arg "Gantt.render: non-positive makespan";
  if processors < 1 then invalid_arg "Gantt.render: no processors";
  let buf = Buffer.create 8192 in
  let plot_width = width - margin_left - 20 in
  let height = margin_top + (processors * (lane_height + lane_gap)) + margin_bottom in
  let x_of t = margin_left + int_of_float (float_of_int plot_width *. t /. makespan) in
  let y_of p = margin_top + (p * (lane_height + lane_gap)) in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        font-family=\"sans-serif\" font-size=\"11\">\n"
       width height);
  Buffer.add_string buf
    (Printf.sprintf "<text x=\"%d\" y=\"20\" font-size=\"14\">%s (makespan %.1f s)</text>\n"
       margin_left title makespan);
  (* lanes *)
  for p = 0 to processors - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "<text x=\"8\" y=\"%d\">p%d</text>\n<rect x=\"%d\" y=\"%d\" width=\"%d\" \
          height=\"%d\" fill=\"#f2f2f2\"/>\n"
         (y_of p + (lane_height / 2) + 4)
         p margin_left (y_of p) plot_width lane_height)
  done;
  (* attempts *)
  Array.iter
    (fun (r : Engine.record) ->
      let colour = palette.(r.Engine.seg_index mod Array.length palette) in
      List.iter
        (fun (a : Engine.attempt) ->
          let x = x_of a.Engine.attempt_start in
          let w = max 1 (x_of a.Engine.attempt_end - x) in
          let y = y_of r.Engine.seg_processor in
          if a.Engine.failed then begin
            Buffer.add_string buf
              (Printf.sprintf
                 "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#e15759\" \
                  fill-opacity=\"0.55\"><title>segment %d attempt failed at \
                  %.2f</title></rect>\n"
                 x (y + 3) w (lane_height - 6) r.Engine.seg_index a.Engine.attempt_end);
            Buffer.add_string buf
              (Printf.sprintf
                 "<text x=\"%d\" y=\"%d\" fill=\"#b00\" font-size=\"12\">&#x26A1;</text>\n"
                 (x + w - 4) (y + lane_height - 8))
          end
          else
            Buffer.add_string buf
              (Printf.sprintf
                 "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\"><title>\
                  segment %d: %.2f - %.2f</title></rect>\n"
                 x (y + 3) w (lane_height - 6) colour r.Engine.seg_index
                 a.Engine.attempt_start a.Engine.attempt_end))
        r.Engine.attempts)
    records;
  (* time axis: 5 ticks *)
  let axis_y = margin_top + (processors * (lane_height + lane_gap)) + 4 in
  for k = 0 to 5 do
    let t = makespan *. float_of_int k /. 5. in
    Buffer.add_string buf
      (Printf.sprintf
         "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#999\"/>\n<text x=\"%d\" \
          y=\"%d\" fill=\"#555\">%.0f</text>\n"
         (x_of t) (axis_y - 6) (x_of t) axis_y (x_of t - 8) (axis_y + 14) t)
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let render_plan ?width ?lane_height ?(seed = 11) (plan : Strategy.plan) =
  let segs = Ckpt_sim.Runner.segs_of_plan plan in
  let platform = plan.Strategy.platform in
  let rng = Rng.create seed in
  let traces = Hashtbl.create 16 in
  let trace p =
    match Hashtbl.find_opt traces p with
    | Some t -> t
    | None ->
        let t = Failure.create rng ~lambda:(Platform.rate_of platform p) in
        Hashtbl.replace traces p t;
        t
  in
  let records, makespan = Engine.execute segs trace in
  let processors = plan.Strategy.schedule.Ckpt_core.Schedule.processors in
  render ?width ?lane_height
    ~title:(Strategy.kind_name plan.Strategy.kind)
    ~processors ~makespan records

let save path svg =
  let oc = open_out_bin path in
  output_string oc svg;
  close_out oc
