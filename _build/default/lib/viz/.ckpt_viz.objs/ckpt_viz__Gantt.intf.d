lib/viz/gantt.mli: Ckpt_core Ckpt_sim
