lib/viz/gantt.ml: Array Buffer Ckpt_core Ckpt_platform Ckpt_prob Ckpt_sim Hashtbl List Printf
