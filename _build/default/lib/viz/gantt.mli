(** SVG Gantt charts of simulated executions.

    Renders one lane per processor; each segment attempt is a
    rectangle — failed attempts (cut short by a fail-stop error) in
    red with a lightning mark at the failure instant, the successful
    attempt in the superchain's colour. Pure string generation, no
    dependencies: the output opens in any browser. *)

val render :
  ?width:int ->
  ?lane_height:int ->
  ?title:string ->
  processors:int ->
  makespan:float ->
  Ckpt_sim.Engine.record array ->
  string
(** [render ~processors ~makespan records] draws the execution.
    [width] is the drawing width in pixels (default 1000),
    [lane_height] the per-processor lane height (default 28). *)

val render_plan :
  ?width:int ->
  ?lane_height:int ->
  ?seed:int ->
  Ckpt_core.Strategy.plan ->
  string
(** Simulates one execution of the plan (with the plan's own failure
    rate) and renders it.

    @raise Invalid_argument on a CKPTNONE plan. *)

val save : string -> string -> unit
(** [save path svg] writes the SVG document to a file. *)
