module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng

type seg = { processor : int; duration : float; preds : int list }

type attempt = { attempt_start : float; attempt_end : float; failed : bool }
type record = { seg_index : int; seg_processor : int; attempts : attempt list }

let execute segs trace_of_processor =
  let n = Array.length segs in
  let completion = Array.make n 0. in
  let records = Array.make n { seg_index = 0; seg_processor = 0; attempts = [] } in
  let proc_free = Hashtbl.create 16 in
  let traces = Hashtbl.create 16 in
  let trace p =
    match Hashtbl.find_opt traces p with
    | Some t -> t
    | None ->
        let t = trace_of_processor p in
        Hashtbl.replace traces p t;
        t
  in
  let finish = ref 0. in
  for i = 0 to n - 1 do
    let seg = segs.(i) in
    let ready =
      List.fold_left
        (fun acc p ->
          if p >= i then invalid_arg "Engine.makespan: segments not topologically ordered";
          Float.max acc completion.(p))
        0. seg.preds
    in
    let free = Option.value ~default:0. (Hashtbl.find_opt proc_free seg.processor) in
    let start = Float.max ready free in
    (* retry the segment until an attempt fits before the next failure *)
    let tr = trace seg.processor in
    let rec attempt start acc =
      if seg.duration = 0. then
        (start, List.rev ({ attempt_start = start; attempt_end = start; failed = false } :: acc))
      else begin
        let failure = Failure.next_after tr start in
        if failure < start +. seg.duration then
          attempt failure ({ attempt_start = start; attempt_end = failure; failed = true } :: acc)
        else
          let finish = start +. seg.duration in
          (finish, List.rev ({ attempt_start = start; attempt_end = finish; failed = false } :: acc))
      end
    in
    let done_at, attempts = attempt start [] in
    completion.(i) <- done_at;
    records.(i) <- { seg_index = i; seg_processor = seg.processor; attempts };
    Hashtbl.replace proc_free seg.processor done_at;
    if done_at > !finish then finish := done_at
  done;
  (records, !finish)

let makespan segs trace_of_processor = snd (execute segs trace_of_processor)

type summary = { failures : int; wasted_time : float; useful_time : float }

let summarize records =
  let failures = ref 0 and wasted = ref 0. and useful = ref 0. in
  Array.iter
    (fun r ->
      List.iter
        (fun a ->
          let span = a.attempt_end -. a.attempt_start in
          if a.failed then begin
            incr failures;
            wasted := !wasted +. span
          end
          else useful := !useful +. span)
        r.attempts)
    records;
  { failures = !failures; wasted_time = !wasted; useful_time = !useful }

let restart_rate_makespan ~wpar ~rate rng =
  if wpar < 0. then invalid_arg "Engine.restart_makespan: negative Wpar";
  if rate < 0. then invalid_arg "Engine.restart_makespan: negative rate";
  if rate <= 0. || wpar = 0. then wpar
  else begin
    let rec go elapsed =
      let gap = Rng.exponential rng ~rate in
      if gap >= wpar then elapsed +. wpar else go (elapsed +. gap)
    in
    go 0.
  end

let restart_makespan ~wpar ~processors ~lambda rng =
  if processors < 1 then invalid_arg "Engine.restart_makespan: processors < 1";
  restart_rate_makespan ~wpar ~rate:(float_of_int processors *. lambda) rng
