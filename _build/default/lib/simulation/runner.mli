(** Monte-Carlo simulation driver for strategy plans.

    Repeatedly executes a {!Ckpt_core.Strategy.plan} against fresh
    exponential failure traces and collects makespan statistics —
    ground truth against which the analytical estimators (and the
    first-order model itself) are validated. *)

val segs_of_plan : Ckpt_core.Strategy.plan -> Engine.seg array
(** The executable segment DAG of a CKPTALL/CKPTSOME plan: one entry
    per coalesced segment, dependencies taken from the plan's 2-state
    DAG, durations equal to [read + work + write].

    @raise Invalid_argument on a CKPTNONE plan (nothing to segment). *)

val simulate :
  ?trials:int -> ?seed:int -> Ckpt_core.Strategy.plan -> Ckpt_prob.Stats.t
(** [trials] defaults to 1000. CKPTALL/CKPTSOME run through
    {!Engine.makespan}; CKPTNONE uses the restart-from-scratch
    semantics on its failure-free parallel time. *)

val simulated_expected_makespan :
  ?trials:int -> ?seed:int -> Ckpt_core.Strategy.plan -> float

val sample_makespans :
  ?trials:int -> ?seed:int -> Ckpt_core.Strategy.plan -> float array
(** The raw makespan sample (same semantics as {!simulate}) — for
    quantiles and distribution comparisons. *)
