lib/simulation/engine.mli: Ckpt_platform Ckpt_prob
