lib/simulation/engine.ml: Array Ckpt_platform Ckpt_prob Float Hashtbl List Option
