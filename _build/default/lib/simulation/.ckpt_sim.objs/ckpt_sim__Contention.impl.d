lib/simulation/contention.ml: Array Ckpt_core Ckpt_eval Ckpt_platform Ckpt_prob Float Hashtbl List Option
