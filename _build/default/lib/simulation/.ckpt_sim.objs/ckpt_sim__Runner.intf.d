lib/simulation/runner.mli: Ckpt_core Ckpt_prob Engine
