lib/simulation/runner.ml: Array Ckpt_core Ckpt_eval Ckpt_platform Ckpt_prob Engine Hashtbl
