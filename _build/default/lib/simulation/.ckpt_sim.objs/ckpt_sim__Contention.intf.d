lib/simulation/contention.mli: Ckpt_core Ckpt_platform Ckpt_prob
