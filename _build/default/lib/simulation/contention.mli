(** Failure-injected execution under stable-storage contention — an
    extension beyond the paper, whose model prices I/O at full
    bandwidth regardless of how many processors checkpoint at once.

    Here the shared storage has an aggregate bandwidth fairly divided
    among the processors currently reading or writing (a fluid model):
    with [k] concurrent streams each progresses at [bandwidth / k].
    Every segment runs three phases — read its R bytes, compute its W
    seconds, write its C bytes — and a fail-stop failure during any
    phase restarts the segment from its read phase, exactly like the
    contention-free engine. Synchronous checkpointing strategies
    (CKPTALL after every task; the bipartite-completed CKPTSOME after
    every level) produce I/O bursts, so contention widens the gap the
    paper measures at nominal bandwidth. *)

type seg = {
  processor : int;
  read_bytes : float;
  work : float;  (** seconds *)
  write_bytes : float;
  preds : int list;
}

val makespan :
  bandwidth:float -> seg array -> (int -> Ckpt_platform.Failure.t) -> float
(** Execute under fair-shared bandwidth. Preconditions as
    {!Engine.makespan}: topologically ordered, per-processor order
    respected.

    @raise Invalid_argument on a bad ordering or non-positive
    bandwidth. *)

val segs_of_plan : Ckpt_core.Strategy.plan -> seg array
(** Rebuild byte quantities from the plan's segments and its
    platform's nominal bandwidth.

    @raise Invalid_argument on a CKPTNONE plan. *)

val simulate :
  ?trials:int -> ?seed:int -> Ckpt_core.Strategy.plan -> Ckpt_prob.Stats.t
(** Monte-Carlo driver under contention, mirroring
    {!Runner.simulate}. *)
