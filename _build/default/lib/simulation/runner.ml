module Strategy = Ckpt_core.Strategy
module Schedule = Ckpt_core.Schedule
module Superchain = Ckpt_core.Superchain
module Placement = Ckpt_core.Placement
module Prob_dag = Ckpt_eval.Prob_dag
module Platform = Ckpt_platform.Platform
module Failure = Ckpt_platform.Failure
module Rng = Ckpt_prob.Rng
module Stats = Ckpt_prob.Stats

let segs_of_plan (plan : Strategy.plan) =
  match plan.Strategy.prob_dag with
  | None -> invalid_arg "Runner.segs_of_plan: CKPTNONE has no segments"
  | Some pd ->
      Array.mapi
        (fun idx (seg : Placement.segment) ->
          let sc = plan.Strategy.schedule.Schedule.superchains.(seg.Placement.chain) in
          {
            Engine.processor = sc.Superchain.processor;
            duration = seg.Placement.read +. seg.Placement.work +. seg.Placement.write;
            preds = Prob_dag.preds pd idx;
          })
        plan.Strategy.segments

let sample_makespans ?(trials = 1000) ?(seed = 7) (plan : Strategy.plan) =
  if trials < 1 then invalid_arg "Runner.simulate: trials < 1";
  let platform = plan.Strategy.platform in
  let master = Rng.create seed in
  match plan.Strategy.prob_dag with
  | Some _ ->
      let segs = segs_of_plan plan in
      Array.init trials (fun _ ->
          let trial_rng = Rng.split master in
          let traces = Hashtbl.create 16 in
          let trace_of p =
            match Hashtbl.find_opt traces p with
            | Some t -> t
            | None ->
                let t = Failure.create trial_rng ~lambda:(Platform.rate_of platform p) in
                Hashtbl.replace traces p t;
                t
          in
          Engine.makespan segs trace_of)
  | None ->
      let wpar = plan.Strategy.wpar in
      (* restart semantics: the aggregate failure process over the
         used processors (sum of exponential rates) *)
      let used = Hashtbl.create 16 in
      Array.iter
        (fun (sc : Superchain.t) -> Hashtbl.replace used sc.Superchain.processor ())
        plan.Strategy.schedule.Schedule.superchains;
      let rate = Hashtbl.fold (fun p () acc -> acc +. Platform.rate_of platform p) used 0. in
      Array.init trials (fun _ ->
          let trial_rng = Rng.split master in
          Engine.restart_rate_makespan ~wpar ~rate trial_rng)

let simulate ?trials ?seed plan = Stats.of_array (sample_makespans ?trials ?seed plan)

let simulated_expected_makespan ?trials ?seed plan =
  Stats.mean (simulate ?trials ?seed plan)
