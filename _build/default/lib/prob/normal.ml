let pdf x = exp (-0.5 *. x *. x) /. sqrt (2. *. Float.pi)

(* erf via a series/asymptotic split:
   - |x| < 4: Maclaurin series of erf (terms peak near n = x^2 <= 16,
     so cancellation costs at most a few digits of the 1e-16 epsilon);
   - |x| >= 4: asymptotic expansion of erfc,
     erfc(x) ~ exp(-x^2)/(x sqrt(pi)) * (1 - 1/(2x^2) + 3/(2x^2)^2 ...),
     truncated at its smallest term.
   Absolute error stays below ~1e-13 over the whole line, which
   matters because Sculli's method evaluates the CDF at moderately
   large arguments where crude A&S 7.1.26 approximations lose digits. *)

let erf_series x =
  (* erf(x) = 2/sqrt(pi) * sum_{n>=0} (-1)^n x^(2n+1) / (n! (2n+1)) *)
  let x2 = x *. x in
  let rec go n term acc =
    if abs_float term < 1e-18 *. abs_float acc || n > 300 then acc
    else
      let term' = -.term *. x2 /. float_of_int n in
      let acc' = acc +. (term' /. float_of_int ((2 * n) + 1)) in
      go (n + 1) term' acc'
  in
  2. /. sqrt Float.pi *. go 1 x x

let erfc_asymptotic x =
  (* erfc(x) = exp(-x^2)/(x sqrt(pi)) (1 + sum_k (-1)^k (2k-1)!!/(2x^2)^k),
     truncated where the terms stop shrinking *)
  let x2 = x *. x in
  let rec go k term acc =
    let term' = -.term *. (2. *. float_of_int k -. 1.) /. (2. *. x2) in
    if abs_float term' >= abs_float term || abs_float term' < 1e-18 *. acc || k > 40 then acc
    else go (k + 1) term' (acc +. term')
  in
  let series = go 1 1. 1. in
  exp (-.x2) /. (x *. sqrt Float.pi) *. series

let erf x =
  let ax = abs_float x in
  let v = if ax < 4. then erf_series ax else 1. -. erfc_asymptotic ax in
  if x >= 0. then v else -.v

let cdf x = 0.5 *. (1. +. erf (x /. sqrt 2.))

(* Acklam's inverse normal CDF. *)
let quantile p =
  if p <= 0. || p >= 1. then invalid_arg "Normal.quantile: argument must be in (0,1)";
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let poly coeffs q =
    Array.fold_left (fun acc coeff -> (acc *. q) +. coeff) 0. coeffs
  in
  let tail_estimate q =
    (* valid for the lower tail; upper tail negates the result *)
    poly c q /. ((poly d q *. q) +. 1.)
  in
  let x =
    if p < p_low then tail_estimate (sqrt (-2. *. log p))
    else if p <= 1. -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      poly a r *. q /. ((poly b r *. r) +. 1.)
    end
    else -.tail_estimate (sqrt (-2. *. log (1. -. p)))
  in
  (* one Halley refinement step using the exact cdf *)
  let e = cdf x -. p in
  let u = e *. sqrt (2. *. Float.pi) *. exp (x *. x /. 2.) in
  x -. (u /. (1. +. (x *. u /. 2.)))

let clark_max ~mean1 ~var1 ~mean2 ~var2 ~rho =
  let a2 = var1 +. var2 -. (2. *. rho *. sqrt (var1 *. var2)) in
  if a2 <= 1e-24 then
    (* The two variables are (numerically) identical: max = X1. *)
    (Float.max mean1 mean2, Float.max var1 var2)
  else begin
    let a = sqrt a2 in
    let alpha = (mean1 -. mean2) /. a in
    let phi = pdf alpha and big_phi = cdf alpha in
    let big_phi_neg = cdf (-.alpha) in
    let m =
      (mean1 *. big_phi) +. (mean2 *. big_phi_neg) +. (a *. phi)
    in
    let second_moment =
      ((mean1 *. mean1) +. var1) *. big_phi
      +. ((mean2 *. mean2) +. var2) *. big_phi_neg
      +. ((mean1 +. mean2) *. a *. phi)
    in
    let v = second_moment -. (m *. m) in
    (m, Float.max v 0.)
  end
