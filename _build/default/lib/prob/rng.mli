(** Deterministic, splittable pseudo-random number generator.

    The implementation is xoshiro256** seeded through splitmix64. It is
    self-contained (no dependency on [Stdlib.Random]) so that every
    experiment in this repository is exactly reproducible from a single
    integer seed, and so that independent streams can be split off for
    parallel components (one stream per processor, per trial, ...)
    without statistical interference. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. Equal seeds
    yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] derives a new generator from [t], advancing [t]. The
    derived stream is statistically independent of the parent's
    subsequent output. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [\[0, bound)]. [bound] must be
    positive. *)

val bool : t -> bool
(** Fair coin flip. *)

val uniform : t -> float
(** Uniform draw in the open interval [(0, 1)]; never returns exactly
    [0.], so it is safe to pass to [log]. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] draws from Exp(rate) by inversion. [rate]
    must be positive. *)

val normal : t -> mean:float -> stddev:float -> float
(** Gaussian draw (Box–Muller, fresh pair each call). *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Log-normal draw: [exp (normal ~mean:mu ~stddev:sigma)]. *)

val truncated_normal : t -> mean:float -> stddev:float -> lo:float -> float
(** Gaussian draw resampled until the value is at least [lo]. Used for
    task-runtime and file-size distributions that must stay positive. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle driven by [t]. *)
