(** Gaussian utilities for the NORMAL (Sculli) makespan estimator.

    Sculli's method propagates (mean, variance) pairs through the DAG,
    treating every partial completion time as normal: sums add moments;
    maxima use Clark's 1961 moment-matching formulas, which require the
    standard normal PDF and CDF implemented here. *)

val pdf : float -> float
(** Standard normal density. *)

val cdf : float -> float
(** Standard normal cumulative distribution, accurate to ~1e-13
    (computed from [erf]). *)

val erf : float -> float
(** Error function (Maclaurin series for [|x| < 4], asymptotic
    expansion of erfc beyond; absolute error below ~1e-13). *)

val quantile : float -> float
(** Inverse standard normal CDF (Acklam's algorithm, relative error
    ~1.15e-9). Argument must lie in (0, 1). *)

val clark_max :
  mean1:float ->
  var1:float ->
  mean2:float ->
  var2:float ->
  rho:float ->
  float * float
(** [clark_max ~mean1 ~var1 ~mean2 ~var2 ~rho] returns the mean and
    variance of [max(X1, X2)] for jointly normal X1, X2 with the given
    moments and correlation [rho], by Clark's exact first two moments
    of the maximum of bivariate normals. *)
