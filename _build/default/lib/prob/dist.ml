type t = { pts : (float * float) array }
(* Invariant: values strictly increasing, probabilities > 0, sum = 1. *)

let normalize pairs =
  if pairs = [] then invalid_arg "Dist.of_list: empty support";
  List.iter
    (fun (_, p) -> if p < 0. then invalid_arg "Dist.of_list: negative probability")
    pairs;
  let sorted = List.sort (fun (v1, _) (v2, _) -> compare v1 v2) pairs in
  (* merge equal (or numerically indistinguishable) values *)
  let merged =
    List.fold_left
      (fun acc (v, p) ->
        match acc with
        | (v0, p0) :: rest when abs_float (v -. v0) <= 1e-12 *. (1. +. abs_float v0) ->
            (v0, p0 +. p) :: rest
        | _ -> (v, p) :: acc)
      [] sorted
    |> List.rev
    |> List.filter (fun (_, p) -> p > 0.)
  in
  let total = List.fold_left (fun s (_, p) -> s +. p) 0. merged in
  if total <= 0. then invalid_arg "Dist.of_list: zero total mass";
  { pts = Array.of_list (List.map (fun (v, p) -> (v, p /. total)) merged) }

let of_list pairs = normalize pairs
let constant v = { pts = [| (v, 1.) |] }

let two_state ?(p = 0.) low high =
  if p <= 0. then constant low
  else if p >= 1. then constant high
  else if low = high then constant low
  else normalize [ (low, 1. -. p); (high, p) ]

let support t = Array.copy t.pts
let size t = Array.length t.pts
let mean t = Array.fold_left (fun s (v, p) -> s +. (v *. p)) 0. t.pts

let variance t =
  let m = mean t in
  Array.fold_left (fun s (v, p) -> s +. (p *. (v -. m) *. (v -. m))) 0. t.pts

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Dist.quantile";
  let n = Array.length t.pts in
  let rec scan i acc =
    if i = n - 1 then fst t.pts.(i)
    else
      let acc = acc +. snd t.pts.(i) in
      if acc >= q -. 1e-12 then fst t.pts.(i) else scan (i + 1) acc
  in
  scan 0 0.

let cdf t x =
  let acc = ref 0. in
  Array.iter (fun (v, p) -> if v <= x then acc := !acc +. p) t.pts;
  !acc

let shift t c = { pts = Array.map (fun (v, p) -> (v +. c, p)) t.pts }

let scale t c =
  if c < 0. then invalid_arg "Dist.scale: negative factor";
  if c = 0. then constant 0.
  else { pts = Array.map (fun (v, p) -> (v *. c, p)) t.pts }

let add a b =
  let pairs = ref [] in
  Array.iter
    (fun (va, pa) -> Array.iter (fun (vb, pb) -> pairs := (va +. vb, pa *. pb) :: !pairs) b.pts)
    a.pts;
  normalize !pairs

(* For max and min we exploit sortedness: walk both supports once,
   using the joint CDF. P(max <= x) = Fa(x) * Fb(x). *)
let with_joint_cdf f a b =
  let values =
    Array.append (Array.map fst a.pts) (Array.map fst b.pts)
    |> Array.to_list |> List.sort_uniq compare
  in
  let cdf_points pts =
    (* association list value -> CDF at that value, over [values] *)
    let acc = ref 0. and idx = ref 0 in
    List.map
      (fun v ->
        while !idx < Array.length pts && fst pts.(!idx) <= v do
          acc := !acc +. snd pts.(!idx);
          incr idx
        done;
        !acc)
      values
  in
  let fa = cdf_points a.pts and fb = cdf_points b.pts in
  let cdf = List.map2 f fa fb in
  (* convert CDF back to point masses *)
  let rec diff prev vs cs acc =
    match (vs, cs) with
    | [], [] -> List.rev acc
    | v :: vs, c :: cs ->
        let mass = c -. prev in
        if mass > 1e-15 then diff c vs cs ((v, mass) :: acc) else diff c vs cs acc
    | _ -> assert false
  in
  normalize (diff 0. values cdf [])

let max2 a b = with_joint_cdf (fun fa fb -> fa *. fb) a b
let min2 a b = with_joint_cdf (fun fa fb -> fa +. fb -. (fa *. fb)) a b

let compact ?(max_size = 512) t =
  let n = Array.length t.pts in
  if n <= max_size then t
  else begin
    (* Merge adjacent points into [max_size] buckets of (approximately)
       equal probability mass; each bucket is replaced by its
       mass-weighted mean, preserving the overall expectation. *)
    let target = 1. /. float_of_int max_size in
    let buckets = ref [] in
    let bucket_mass = ref 0. and bucket_weighted = ref 0. in
    let flush () =
      if !bucket_mass > 0. then begin
        buckets := (!bucket_weighted /. !bucket_mass, !bucket_mass) :: !buckets;
        bucket_mass := 0.;
        bucket_weighted := 0.
      end
    in
    Array.iter
      (fun (v, p) ->
        bucket_mass := !bucket_mass +. p;
        bucket_weighted := !bucket_weighted +. (v *. p);
        if !bucket_mass >= target then flush ())
      t.pts;
    flush ();
    normalize !buckets
  end

let sample t rng =
  let u = Rng.uniform rng in
  let n = Array.length t.pts in
  let rec scan i acc =
    if i = n - 1 then fst t.pts.(i)
    else
      let acc = acc +. snd t.pts.(i) in
      if u <= acc then fst t.pts.(i) else scan (i + 1) acc
  in
  scan 0 0.

let equal ?(eps = 1e-9) a b =
  Array.length a.pts = Array.length b.pts
  && Array.for_all2
       (fun (va, pa) (vb, pb) -> abs_float (va -. vb) <= eps && abs_float (pa -. pb) <= eps)
       a.pts b.pts

let pp fmt t =
  Format.fprintf fmt "@[<hov 1>{";
  Array.iteri
    (fun i (v, p) ->
      if i > 0 then Format.fprintf fmt ";@ ";
      Format.fprintf fmt "%g:%.4f" v p)
    t.pts;
  Format.fprintf fmt "}@]"
