lib/prob/normal.ml: Array Float
