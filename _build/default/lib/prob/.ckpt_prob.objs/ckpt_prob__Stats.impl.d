lib/prob/stats.ml: Array Stdlib
