lib/prob/dist.ml: Array Format List Rng
