lib/prob/rng.mli:
