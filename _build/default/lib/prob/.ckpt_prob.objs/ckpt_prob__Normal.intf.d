lib/prob/normal.mli:
