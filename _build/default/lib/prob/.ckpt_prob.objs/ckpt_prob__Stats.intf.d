lib/prob/stats.mli:
