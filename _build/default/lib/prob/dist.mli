(** Finite discrete probability distributions over non-negative reals.

    A distribution is a sorted array of (value, probability) pairs with
    probabilities summing to 1. These are the workhorse of the exact
    series-parallel makespan evaluation (Möhring's distribution
    calculus) and of Dodin's approximation: sums of independent task
    durations are convolutions, parallel joins are maxima (product of
    CDFs). Support size is kept in check by [compact]. *)

type t
(** Immutable discrete distribution. *)

val of_list : (float * float) list -> t
(** [of_list pairs] builds a distribution from (value, probability)
    pairs. Duplicate values are merged, probabilities are renormalised
    to sum to 1 (guarding against accumulated float error).

    @raise Invalid_argument if the list is empty, a probability is
    negative, or the total mass is zero. *)

val constant : float -> t
(** Point mass at the given value. *)

val two_state : ?p:float -> float -> float -> t
(** [two_state ~p low high] takes value [low] with probability [1-p]
    and [high] with probability [p] — the first-order task model of the
    paper (Eq. 1). Defaults [p] to [0.]. *)

val support : t -> (float * float) array
(** Underlying (value, probability) pairs, sorted by increasing value. *)

val size : t -> int
(** Support size. *)

val mean : t -> float
val variance : t -> float

val quantile : t -> float -> float
(** [quantile d q] is the smallest support value whose cumulative
    probability reaches [q] (with [0 <= q <= 1]). *)

val cdf : t -> float -> float
(** [cdf d x] is P(X <= x). *)

val shift : t -> float -> t
(** [shift d c] adds the constant [c] to every value. *)

val scale : t -> float -> t
(** [scale d c] multiplies every value by [c >= 0]. *)

val add : t -> t -> t
(** Distribution of the sum of two independent variables
    (convolution). Support size is the product of the operands'. *)

val max2 : t -> t -> t
(** Distribution of the max of two independent variables. *)

val min2 : t -> t -> t
(** Distribution of the min of two independent variables. *)

val compact : ?max_size:int -> t -> t
(** [compact ~max_size d] reduces the support to at most [max_size]
    points by merging adjacent values (mass-weighted mean preserves the
    expectation exactly; spread inside a merged bucket is what is
    approximated). Defaults to 512 points. *)

val sample : t -> Rng.t -> float
(** Draw from the distribution by inversion. *)

val equal : ?eps:float -> t -> t -> bool
(** Structural equality up to [eps] on both values and probabilities. *)

val pp : Format.formatter -> t -> unit
