(** Workflow tasks.

    A task is an atomic unit of sequential computation with a
    failure-free execution time (its {e weight}, in seconds) and a
    human-readable name (the Pegasus transformation name, e.g.
    ["mProjectPP"]). Task identity within a workflow is its integer
    index in the owning {!Dag.t}. *)

type id = int
(** Index of a task inside its workflow DAG. *)

type t = { id : id; name : string; weight : float }

val make : id:id -> name:string -> weight:float -> t
(** @raise Invalid_argument if [weight < 0.]. *)

val compare : t -> t -> int
(** Orders by [id]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
