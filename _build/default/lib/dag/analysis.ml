type profile = {
  tasks : int;
  edges : int;
  depth : int;
  max_width : int;
  total_weight : float;
  total_data : float;
  critical_path_length : float;
  critical_path_tasks : int;
  avg_parallelism : float;
  sources : int;
  sinks : int;
  max_in_degree : int;
  max_out_degree : int;
  initial_input_files : int;
  shared_files : int;
}

let level_widths dag =
  let levels = Dag.levels dag in
  let depth = Array.fold_left max 0 levels + 1 in
  let widths = Array.make depth 0 in
  Array.iter (fun l -> widths.(l) <- widths.(l) + 1) levels;
  widths

let profile dag =
  let n = Dag.n_tasks dag in
  if n = 0 then invalid_arg "Analysis.profile: empty workflow";
  let widths = level_widths dag in
  let critical = Dag.critical_path dag in
  let cp_length = List.fold_left (fun acc t -> acc +. Dag.weight dag t) 0. critical in
  let max_in = ref 0 and max_out = ref 0 and inputs = ref 0 in
  for t = 0 to n - 1 do
    max_in := max !max_in (List.length (Dag.pred_ids dag t));
    max_out := max !max_out (List.length (Dag.succ_ids dag t));
    inputs := !inputs + List.length (Dag.inputs dag t)
  done;
  (* consumers per file *)
  let consumers = Hashtbl.create 64 in
  for t = 0 to n - 1 do
    List.iter
      (fun ((_ : Task.id), (f : Dag.file)) ->
        Hashtbl.replace consumers f.Dag.file_id
          (1 + Option.value ~default:0 (Hashtbl.find_opt consumers f.Dag.file_id)))
      (Dag.preds dag t)
  done;
  let shared = Hashtbl.fold (fun _ c acc -> if c > 1 then acc + 1 else acc) consumers 0 in
  let total_weight = Dag.total_weight dag in
  {
    tasks = n;
    edges = Dag.n_edges dag;
    depth = Array.length widths;
    max_width = Array.fold_left max 0 widths;
    total_weight;
    total_data = Dag.total_data dag;
    critical_path_length = cp_length;
    critical_path_tasks = List.length critical;
    avg_parallelism = (if cp_length > 0. then total_weight /. cp_length else 1.);
    sources = List.length (Dag.sources dag);
    sinks = List.length (Dag.sinks dag);
    max_in_degree = !max_in;
    max_out_degree = !max_out;
    initial_input_files = !inputs;
    shared_files = shared;
  }

let by_task_type dag =
  let acc = Hashtbl.create 16 in
  Array.iter
    (fun (t : Task.t) ->
      let count, weight =
        Option.value ~default:(0, 0.) (Hashtbl.find_opt acc t.Task.name)
      in
      Hashtbl.replace acc t.Task.name (count + 1, weight +. t.Task.weight))
    (Dag.tasks dag);
  Hashtbl.fold (fun name (count, weight) l -> (name, count, weight) :: l) acc []
  |> List.sort (fun (_, _, w1) (_, _, w2) -> compare w2 w1)

let bottleneck_tasks ?(top = 5) dag =
  Dag.tasks dag |> Array.to_list
  |> List.sort (fun (a : Task.t) b -> compare b.Task.weight a.Task.weight)
  |> List.filteri (fun i _ -> i < top)

let pp_profile fmt p =
  Format.fprintf fmt
    "@[<v>tasks: %d, edges: %d@,levels: %d (max width %d)@,weight: %.1f s (critical path \
     %.1f s over %d tasks, avg parallelism %.2f)@,data: %.3g bytes (%d initial inputs, %d \
     shared files)@,degrees: in <= %d, out <= %d; %d sources, %d sinks@]"
    p.tasks p.edges p.depth p.max_width p.total_weight p.critical_path_length
    p.critical_path_tasks p.avg_parallelism p.total_data p.initial_input_files
    p.shared_files p.max_in_degree p.max_out_degree p.sources p.sinks
