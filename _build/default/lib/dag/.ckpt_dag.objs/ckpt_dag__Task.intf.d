lib/dag/task.mli: Format
