lib/dag/analysis.ml: Array Dag Format Hashtbl List Option Task
