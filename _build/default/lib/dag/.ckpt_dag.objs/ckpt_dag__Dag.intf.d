lib/dag/dag.mli: Ckpt_prob Format Task
