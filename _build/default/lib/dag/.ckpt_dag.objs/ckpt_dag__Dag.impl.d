lib/dag/dag.ml: Array Buffer Ckpt_prob Format Hashtbl List Printf Task
