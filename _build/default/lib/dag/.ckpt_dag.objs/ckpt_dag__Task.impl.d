lib/dag/task.ml: Format Int
