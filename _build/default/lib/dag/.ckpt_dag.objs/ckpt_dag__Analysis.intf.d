lib/dag/analysis.mli: Dag Format Task
