type id = int
type t = { id : id; name : string; weight : float }

let make ~id ~name ~weight =
  if weight < 0. then invalid_arg "Task.make: negative weight";
  { id; name; weight }

let compare a b = Int.compare a.id b.id
let equal a b = a.id = b.id
let pp fmt t = Format.fprintf fmt "%s#%d(w=%g)" t.name t.id t.weight
