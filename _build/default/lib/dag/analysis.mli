(** Structural and quantitative workflow analysis.

    Summary metrics used to characterise workloads (as Bharathi et
    al. do for the Pegasus suite) and to sanity-check generated
    instances: depth/width, parallelism profile, critical-path shares,
    data-flow statistics, task-type breakdowns. *)

type profile = {
  tasks : int;
  edges : int;
  depth : int;  (** number of levels (longest hop path + 1) *)
  max_width : int;  (** largest level population *)
  total_weight : float;
  total_data : float;  (** all files incl. initial inputs, each once *)
  critical_path_length : float;  (** seconds, node weights only *)
  critical_path_tasks : int;
  avg_parallelism : float;  (** total_weight / critical_path_length *)
  sources : int;
  sinks : int;
  max_in_degree : int;
  max_out_degree : int;
  initial_input_files : int;
  shared_files : int;  (** files with more than one consumer *)
}

val profile : Dag.t -> profile
(** @raise Invalid_argument on an empty or cyclic graph. *)

val level_widths : Dag.t -> int array
(** Population of each level (index = level). *)

val by_task_type : Dag.t -> (string * int * float) list
(** Per task name: (name, count, summed weight), heaviest type first. *)

val bottleneck_tasks : ?top:int -> Dag.t -> Task.t list
(** The [top] (default 5) heaviest tasks. *)

val pp_profile : Format.formatter -> profile -> unit
(** Multi-line human-readable rendering. *)
