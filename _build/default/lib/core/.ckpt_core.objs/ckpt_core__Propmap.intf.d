lib/core/propmap.mli: Ckpt_dag Ckpt_mspg
