lib/core/refine.mli: Ckpt_eval Strategy
