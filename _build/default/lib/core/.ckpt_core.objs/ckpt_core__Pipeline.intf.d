lib/core/pipeline.mli: Ckpt_dag Ckpt_eval Ckpt_mspg Ckpt_platform Linearize Schedule Strategy
