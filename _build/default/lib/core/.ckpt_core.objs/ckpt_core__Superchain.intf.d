lib/core/superchain.mli: Ckpt_dag Format Hashtbl
