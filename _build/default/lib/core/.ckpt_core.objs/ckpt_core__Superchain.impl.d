lib/core/superchain.ml: Array Ckpt_dag Format Hashtbl List String
