lib/core/allocate.mli: Ckpt_mspg Linearize Schedule
