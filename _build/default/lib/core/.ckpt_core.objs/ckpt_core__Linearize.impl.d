lib/core/linearize.ml: Array Ckpt_dag Ckpt_prob Hashtbl List Option
