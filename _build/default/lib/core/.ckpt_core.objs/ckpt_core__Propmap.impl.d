lib/core/propmap.ml: Array Ckpt_mspg List
