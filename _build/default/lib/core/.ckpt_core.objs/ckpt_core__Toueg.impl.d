lib/core/toueg.ml: Array Float
