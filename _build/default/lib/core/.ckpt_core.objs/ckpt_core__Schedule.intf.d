lib/core/schedule.mli: Ckpt_dag Format Superchain
