lib/core/allocate.ml: Ckpt_dag Ckpt_mspg Linearize List Propmap Schedule Superchain
