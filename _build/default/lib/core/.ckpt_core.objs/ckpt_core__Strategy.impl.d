lib/core/strategy.ml: Array Ckpt_dag Ckpt_eval Ckpt_mspg Ckpt_platform Ckpt_prob Float Hashtbl List Option Placement Printf Schedule Superchain
