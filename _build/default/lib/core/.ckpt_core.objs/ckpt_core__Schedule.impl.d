lib/core/schedule.ml: Array Ckpt_dag Format Hashtbl List Printf Superchain
