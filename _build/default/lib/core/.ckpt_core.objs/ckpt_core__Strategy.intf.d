lib/core/strategy.mli: Ckpt_dag Ckpt_eval Ckpt_platform Ckpt_prob Placement Schedule Superchain
