lib/core/refine.ml: Array Int List Map Schedule Strategy Superchain
