lib/core/placement.ml: Array Ckpt_dag Ckpt_platform Float Hashtbl List Superchain Toueg
