lib/core/placement.mli: Ckpt_dag Ckpt_platform Superchain
