lib/core/pipeline.ml: Allocate Ckpt_dag Ckpt_mspg Ckpt_platform Schedule Strategy
