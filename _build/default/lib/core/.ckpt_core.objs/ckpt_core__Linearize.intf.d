lib/core/linearize.mli: Ckpt_dag Ckpt_prob
