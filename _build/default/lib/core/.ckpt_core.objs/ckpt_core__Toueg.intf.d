lib/core/toueg.mli:
