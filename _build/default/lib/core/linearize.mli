(** Linearisation of a sub-M-SPG onto one processor (ONONEPROCESSOR).

    Produces a topological order of a task subset of the workflow.
    The paper uses a random topological sort and names volume-aware
    orders as future work (the sum-cut connection, Section VIII); all
    three policies are provided so the ablation bench can compare
    them:

    - [Deterministic]: smallest task id first (reproducible default);
    - [Random rng]: uniformly random ready-task choice (the paper's
      stated policy);
    - [Min_volume]: greedy heuristic picking the ready task that
      minimises the volume of live output data (files produced by
      executed tasks that still have pending consumers) — fewer live
      bytes when a checkpoint is taken means cheaper checkpoints. *)

type policy = Deterministic | Random of Ckpt_prob.Rng.t | Min_volume

val order : Ckpt_dag.Dag.t -> Ckpt_dag.Task.id list -> policy -> Ckpt_dag.Task.id array
(** [order dag tasks policy] topologically sorts [tasks] w.r.t. the
    edges of [dag] internal to the subset.

    @raise Invalid_argument if the induced subgraph is cyclic. *)
