module Mspg = Ckpt_mspg.Mspg
module Dag = Ckpt_dag.Dag

let run ?(policy = Linearize.Deterministic) (mspg : Mspg.t) ~processors =
  if processors < 1 then invalid_arg "Allocate.run: processors < 1";
  let dag = mspg.Mspg.dag in
  let superchains = ref [] in
  let next_id = ref 0 in
  let on_one_processor tasks proc =
    let order = Linearize.order dag tasks policy in
    let sc = Superchain.make ~id:!next_id ~processor:proc ~order in
    incr next_id;
    superchains := sc :: !superchains
  in
  (* procs is a contiguous [first, first+count) processor window *)
  let rec allocate tree first count =
    let { Mspg.chain; branches; rest } = Mspg.decompose tree in
    if chain <> [] then on_one_processor chain first;
    (match branches with
    | [] -> ()
    | _ when count = 1 ->
        on_one_processor (List.concat_map Mspg.tree_tasks branches) first
    | _ ->
        let assignments = Propmap.run dag branches count in
        let offset = ref 0 in
        List.iter
          (fun (graph, procs) ->
            allocate graph (first + !offset) procs;
            offset := !offset + procs)
          assignments);
    match rest with None -> () | Some suffix -> allocate suffix first count
  in
  allocate mspg.Mspg.tree 0 processors;
  Schedule.make ~dag ~processors ~superchains:(List.rev !superchains)
