let solve ~n ~cost =
  if n < 1 then invalid_arg "Toueg.solve: n < 1";
  let etime = Array.make n infinity in
  let last_ckpt = Array.make n (-1) in
  for j = 0 to n - 1 do
    etime.(j) <- cost 0 j;
    last_ckpt.(j) <- -1;
    for i = 0 to j - 1 do
      let candidate = etime.(i) +. cost (i + 1) j in
      if candidate < etime.(j) then begin
        etime.(j) <- candidate;
        last_ckpt.(j) <- i
      end
    done
  done;
  let rec backtrack j acc = if j < 0 then acc else backtrack last_ckpt.(j) (j :: acc) in
  (etime.(n - 1), backtrack (n - 1) [])

let first_order ~lambda s =
  let pfail = Float.min 1. (lambda *. s) in
  ((1. -. pfail) *. s) +. (pfail *. 1.5 *. s)

let chain_cost ~lambda ~read ~weight ~write i j =
  let w = ref 0. in
  for k = i to j do
    w := !w +. weight k
  done;
  first_order ~lambda (read i +. !w +. write j)

let solve_budget ~n ~cost ~budget =
  if n < 1 then invalid_arg "Toueg.solve_budget: n < 1";
  if budget < 1 then invalid_arg "Toueg.solve_budget: budget < 1";
  let budget = min budget n in
  (* etime.(b).(j): optimal time for tasks 0..j ending in a checkpoint
     after j, using at most b+1 checkpoints in total *)
  let etime = Array.make_matrix budget n infinity in
  let last_ckpt = Array.make_matrix budget n (-1) in
  for b = 0 to budget - 1 do
    for j = 0 to n - 1 do
      etime.(b).(j) <- cost 0 j;
      last_ckpt.(b).(j) <- -1;
      if b > 0 then
        for i = 0 to j - 1 do
          let candidate = etime.(b - 1).(i) +. cost (i + 1) j in
          if candidate < etime.(b).(j) then begin
            etime.(b).(j) <- candidate;
            last_ckpt.(b).(j) <- i
          end
        done
    done
  done;
  let rec backtrack b j acc =
    if j < 0 then acc
    else begin
      let i = last_ckpt.(b).(j) in
      backtrack (max 0 (b - 1)) i (j :: acc)
    end
  in
  (etime.(budget - 1).(n - 1), backtrack (budget - 1) (n - 1) [])

let brute_force ~n ~cost =
  if n < 1 then invalid_arg "Toueg.brute_force: n < 1";
  if n > 20 then invalid_arg "Toueg.brute_force: too large";
  (* bit k of the mask (k < n-1) = checkpoint after task k; the final
     checkpoint after task n-1 is implicit *)
  let best = ref infinity and best_set = ref [] in
  for mask = 0 to (1 lsl (n - 1)) - 1 do
    let total = ref 0. in
    let start = ref 0 in
    for k = 0 to n - 1 do
      let is_ckpt = k = n - 1 || mask land (1 lsl k) <> 0 in
      if is_ckpt then begin
        total := !total +. cost !start k;
        start := k + 1
      end
    done;
    if !total < !best then begin
      best := !total;
      let set = ref [] in
      for k = n - 2 downto 0 do
        if mask land (1 lsl k) <> 0 then set := k :: !set
      done;
      best_set := !set @ [ n - 1 ]
    end
  done;
  (!best, !best_set)
