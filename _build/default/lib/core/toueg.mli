(** The Toueg–Babaoğlu optimal-checkpoint dynamic program (1984), in
    the generic form shared by the classical linear-chain algorithm
    and the paper's superchain extension (Algorithm 2).

    Tasks [0 .. n-1] execute in sequence; a checkpoint may be taken
    after any task and is mandatory after the last one. [cost i j] is
    the expected time to successfully execute the segment
    [i..j] (inclusive) given a checkpoint right before [i] and one
    right after [j]. The DP

    [ETime j = min (cost 0 j, min over i < j (ETime i + cost (i+1) j))]

    is optimal because expected segment times are independent across
    checkpoints (a checkpoint regenerates the state), and runs in
    O(n^2) calls to [cost]. *)

val solve : n:int -> cost:(int -> int -> float) -> float * int list
(** [solve ~n ~cost] returns the optimal expected completion time and
    the sorted positions after which to checkpoint (always including
    [n-1]).

    @raise Invalid_argument if [n < 1]. *)

val chain_cost :
  lambda:float ->
  read:(int -> float) ->
  weight:(int -> float) ->
  write:(int -> float) ->
  int ->
  int ->
  float
(** Expected segment time for a plain linear chain under the
    first-order model (Eq. 2 with chain-shaped R/W/C): the segment
    [i..j] reads the input of task [i], executes [w_i..w_j] and writes
    the output of task [j]; with probability [λS] one failure adds
    [S/2]. Supply per-task read/write-to-stable-storage times. *)

val solve_budget :
  n:int -> cost:(int -> int -> float) -> budget:int -> float * int list
(** Budget-constrained variant (an extension beyond the paper): at
    most [budget] checkpoints in total, the mandatory final one
    included. [ETime(j, b) = min(cost 0 j, min over i < j
    (ETime(i, b-1) + cost (i+1) j))], O(n² · budget).

    @raise Invalid_argument if [n < 1] or [budget < 1]. *)

val brute_force : n:int -> cost:(int -> int -> float) -> float * int list
(** Exhaustive search over the [2^(n-1)] checkpoint subsets — for
    testing the DP on small instances only. *)
