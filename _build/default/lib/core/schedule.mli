(** A complete mapping of an M-SPG workflow onto a platform: the list
    of superchains produced by ALLOCATE, plus derived indices. *)

module Dag = Ckpt_dag.Dag
module Task = Ckpt_dag.Task

type t = private {
  dag : Dag.t;  (** the (possibly dummy-completed) workflow *)
  processors : int;
  superchains : Superchain.t array;  (** indexed by superchain id, in creation (temporal) order *)
  chain_of_task : int array;  (** task id -> superchain id *)
}

val make : dag:Dag.t -> processors:int -> superchains:Superchain.t list -> t
(** @raise Invalid_argument unless the superchains partition the DAG's
    tasks and their ids equal their positions. *)

val superchain_of_task : t -> Task.id -> Superchain.t

val macro_edges : t -> (int * int) list
(** Distinct superchain dependencies [(i, j)], [i <> j], induced by the
    DAG's edges. Always acyclic for schedules built by ALLOCATE. *)

val chains_of_processor : t -> int -> Superchain.t list
(** Superchains of one processor, in temporal order. *)

val used_processors : t -> int
(** Number of processors that received at least one task. *)

val check : t -> (unit, string) result
(** Structural sanity: every intra-superchain dependency goes forward
    in the linearised order, and the macro graph is acyclic. *)

val pp : Format.formatter -> t -> unit
