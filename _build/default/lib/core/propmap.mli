(** PROPMAP (Algorithm 1, lines 15-36): proportional-mapping processor
    allocation, after Pothen & Sun's heuristic.

    Given [n] parallel sub-M-SPGs and [p] processors it returns
    [k = min(n, p)] output graphs with processor counts:
    - if [n >= p], the inputs are greedily packed (heaviest first,
      always into the currently lightest bin) into [p] groups of one
      processor each — packed branches merge into one parallel
      composition that will share a processor;
    - if [n < p], every input keeps its own group and the [p - n]
      surplus processors go one by one to the currently heaviest
      group, whose weight is discounted by [1 - 1/procs] at each grant
      (a perfect-speedup estimate of the remaining per-processor
      load). *)

val run :
  Ckpt_dag.Dag.t ->
  Ckpt_mspg.Mspg.tree list ->
  int ->
  (Ckpt_mspg.Mspg.tree * int) list
(** [run dag graphs p] pairs each output graph with its processor
    count. Counts sum to at most [p] (exactly [p] when [n >= p] would
    give [p] groups of one; when [n < p] they sum to exactly [p]).

    @raise Invalid_argument if [graphs] is empty or [p < 1]. *)
