(** Superchains (Section II-C).

    When ALLOCATE maps a sub-M-SPG onto a single processor, its atomic
    tasks are linearised and executed sequentially: the resulting task
    set is a {e superchain} — a chain with forward dependencies that
    may skip over immediate successors. Entry (resp. exit) tasks are
    those with predecessors (resp. successors) outside the superchain;
    by the M-SPG structure, predecessors of entry tasks are exit tasks
    of earlier superchains, so checkpointing every superchain's exit
    data removes all crossover dependencies. *)

module Dag = Ckpt_dag.Dag
module Task = Ckpt_dag.Task

type t = private {
  id : int;  (** index in the schedule, in creation (temporal) order *)
  processor : int;
  order : Task.id array;  (** execution order of the tasks *)
  position : (Task.id, int) Hashtbl.t;  (** inverse of [order] *)
}

val make : id:int -> processor:int -> order:Task.id array -> t
(** @raise Invalid_argument on an empty or duplicate-containing order. *)

val n_tasks : t -> int
val mem : t -> Task.id -> bool
val position : t -> Task.id -> int
(** @raise Not_found if the task is not in the superchain. *)

val task_at : t -> int -> Task.id

val entry_tasks : Dag.t -> t -> Task.id list
(** Tasks with at least one predecessor outside the superchain. *)

val exit_tasks : Dag.t -> t -> Task.id list
(** Tasks with at least one successor outside the superchain. *)

val weight : Dag.t -> t -> float
val pp : Format.formatter -> t -> unit
