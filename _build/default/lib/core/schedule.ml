module Dag = Ckpt_dag.Dag
module Task = Ckpt_dag.Task

type t = {
  dag : Dag.t;
  processors : int;
  superchains : Superchain.t array;
  chain_of_task : int array;
}

let make ~dag ~processors ~superchains =
  let superchains = Array.of_list superchains in
  Array.iteri
    (fun i (sc : Superchain.t) ->
      if sc.Superchain.id <> i then invalid_arg "Schedule.make: superchain ids out of order")
    superchains;
  let n = Dag.n_tasks dag in
  let chain_of_task = Array.make n (-1) in
  Array.iter
    (fun (sc : Superchain.t) ->
      Array.iter
        (fun task ->
          if chain_of_task.(task) >= 0 then
            invalid_arg (Printf.sprintf "Schedule.make: task %d in two superchains" task);
          chain_of_task.(task) <- sc.Superchain.id)
        sc.Superchain.order)
    superchains;
  Array.iteri
    (fun task c ->
      if c < 0 then invalid_arg (Printf.sprintf "Schedule.make: task %d unscheduled" task))
    chain_of_task;
  { dag; processors; superchains; chain_of_task }

let superchain_of_task t task = t.superchains.(t.chain_of_task.(task))

let macro_edges t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  for u = 0 to Dag.n_tasks t.dag - 1 do
    let cu = t.chain_of_task.(u) in
    List.iter
      (fun v ->
        let cv = t.chain_of_task.(v) in
        if cu <> cv && not (Hashtbl.mem seen (cu, cv)) then begin
          Hashtbl.replace seen (cu, cv) ();
          acc := (cu, cv) :: !acc
        end)
      (Dag.succ_ids t.dag u)
  done;
  !acc

let chains_of_processor t proc =
  Array.to_list t.superchains
  |> List.filter (fun (sc : Superchain.t) -> sc.Superchain.processor = proc)

let used_processors t =
  let used = Hashtbl.create 16 in
  Array.iter
    (fun (sc : Superchain.t) -> Hashtbl.replace used sc.Superchain.processor ())
    t.superchains;
  Hashtbl.length used

let check t =
  (* intra-superchain dependencies must go forward *)
  let violation = ref None in
  Array.iter
    (fun (sc : Superchain.t) ->
      Array.iteri
        (fun k task ->
          List.iter
            (fun v ->
              if Superchain.mem sc v && Superchain.position sc v <= k then
                violation :=
                  Some (Printf.sprintf "dependency %d->%d goes backward in superchain %d" task v sc.Superchain.id))
            (Dag.succ_ids t.dag task))
        sc.Superchain.order)
    t.superchains;
  match !violation with
  | Some msg -> Error msg
  | None ->
      (* macro graph acyclicity via Kahn *)
      let m = Array.length t.superchains in
      let edges = macro_edges t in
      let indeg = Array.make m 0 in
      List.iter (fun (_, j) -> indeg.(j) <- indeg.(j) + 1) edges;
      let ready = ref [] in
      Array.iteri (fun i d -> if d = 0 then ready := i :: !ready) indeg;
      let seen = ref 0 in
      let rec drain () =
        match !ready with
        | [] -> ()
        | i :: rest ->
            ready := rest;
            incr seen;
            List.iter
              (fun (a, b) ->
                if a = i then begin
                  indeg.(b) <- indeg.(b) - 1;
                  if indeg.(b) = 0 then ready := b :: !ready
                end)
              edges;
            drain ()
      in
      drain ();
      if !seen = m then Ok () else Error "macro graph of superchains has a cycle"

let pp fmt t =
  Format.fprintf fmt "schedule on %d procs: %d superchains@." t.processors
    (Array.length t.superchains);
  Array.iter (fun sc -> Format.fprintf fmt "  %a@." Superchain.pp sc) t.superchains
