module Dag = Ckpt_dag.Dag
module Rng = Ckpt_prob.Rng

type policy = Deterministic | Random of Rng.t | Min_volume

let order dag tasks policy =
  let n = Dag.n_tasks dag in
  let member = Array.make n false in
  List.iter (fun v -> member.(v) <- true) tasks;
  let internal_preds v = List.filter (fun u -> member.(u)) (Dag.pred_ids dag v) in
  let internal_succs v = List.filter (fun u -> member.(u)) (Dag.succ_ids dag v) in
  let indeg = Hashtbl.create 64 in
  List.iter (fun v -> Hashtbl.replace indeg v (List.length (internal_preds v))) tasks;
  let ready = ref (List.filter (fun v -> Hashtbl.find indeg v = 0) tasks) in
  let count = List.length tasks in
  let result = Array.make count (-1) in
  (* Min_volume bookkeeping: for each produced file, how many internal
     consumers have not executed yet. Volume increase of executing v =
     sizes of v's files with pending internal consumers, minus sizes of
     input files whose last internal consumer is v. *)
  let pending = Hashtbl.create 64 in
  if policy = Min_volume then
    List.iter
      (fun v ->
        List.iter
          (fun (u, (f : Dag.file)) ->
            if member.(u) then
              Hashtbl.replace pending f.Dag.file_id
                (1 + Option.value ~default:0 (Hashtbl.find_opt pending f.Dag.file_id)))
          (Dag.preds dag v))
      tasks;
  let volume_delta v =
    (* freed: input files of v whose pending count would drop to 0 *)
    let freed =
      List.fold_left
        (fun acc (u, (f : Dag.file)) ->
          if member.(u) then
            match Hashtbl.find_opt pending f.Dag.file_id with
            | Some 1 -> acc +. f.Dag.size
            | _ -> acc
          else acc)
        0. (Dag.preds dag v)
    in
    (* created: distinct output files of v with at least one pending
       internal consumer *)
    let seen = Hashtbl.create 8 in
    let created =
      List.fold_left
        (fun acc (u, (f : Dag.file)) ->
          if member.(u) && (not (Hashtbl.mem seen f.Dag.file_id)) then begin
            Hashtbl.replace seen f.Dag.file_id ();
            acc +. f.Dag.size
          end
          else acc)
        0. (Dag.succs dag v)
    in
    created -. freed
  in
  let pick () =
    match (!ready, policy) with
    | [], _ -> None
    | l, Deterministic ->
        let m = List.fold_left min (List.hd l) l in
        Some m
    | l, Random rng -> Some (List.nth l (Rng.int rng (List.length l)))
    | l, Min_volume ->
        let best =
          List.fold_left
            (fun (bv, bd) v ->
              let d = volume_delta v in
              if d < bd -. 1e-12 || (abs_float (d -. bd) <= 1e-12 && v < bv) then (v, d)
              else (bv, bd))
            (List.hd l, volume_delta (List.hd l))
            (List.tl l)
        in
        Some (fst best)
  in
  let remove v = ready := List.filter (fun x -> x <> v) !ready in
  let rec fill k =
    match pick () with
    | None -> k
    | Some v ->
        remove v;
        result.(k) <- v;
        if policy = Min_volume then
          List.iter
            (fun (u, (f : Dag.file)) ->
              if member.(u) then
                match Hashtbl.find_opt pending f.Dag.file_id with
                | Some c -> Hashtbl.replace pending f.Dag.file_id (c - 1)
                | None -> ())
            (Dag.preds dag v);
        List.iter
          (fun u ->
            let d = Hashtbl.find indeg u - 1 in
            Hashtbl.replace indeg u d;
            if d = 0 then ready := u :: !ready)
          (internal_succs v);
        fill (k + 1)
  in
  let filled = fill 0 in
  if filled <> count then invalid_arg "Linearize.order: cyclic task subset";
  result
