module Dag = Ckpt_dag.Dag
module Task = Ckpt_dag.Task

type t = {
  id : int;
  processor : int;
  order : Task.id array;
  position : (Task.id, int) Hashtbl.t;
}

let make ~id ~processor ~order =
  if Array.length order = 0 then invalid_arg "Superchain.make: empty order";
  let position = Hashtbl.create (Array.length order) in
  Array.iteri
    (fun k task ->
      if Hashtbl.mem position task then invalid_arg "Superchain.make: duplicate task";
      Hashtbl.replace position task k)
    order;
  { id; processor; order; position }

let n_tasks t = Array.length t.order
let mem t task = Hashtbl.mem t.position task
let position t task = Hashtbl.find t.position task
let task_at t k = t.order.(k)

let entry_tasks dag t =
  Array.to_list t.order
  |> List.filter (fun task -> List.exists (fun p -> not (mem t p)) (Dag.pred_ids dag task))

let exit_tasks dag t =
  Array.to_list t.order
  |> List.filter (fun task -> List.exists (fun s -> not (mem t s)) (Dag.succ_ids dag task))

let weight dag t = Array.fold_left (fun acc task -> acc +. Dag.weight dag task) 0. t.order

let pp fmt t =
  Format.fprintf fmt "superchain#%d@p%d[%s]" t.id t.processor
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.order)))
