(** ALLOCATE (Algorithm 1): recursive list scheduling of an M-SPG.

    The tree is decomposed as [C ⨟ (G1 ‖ ... ‖ Gn) ⨟ G(n+1)]; the chain
    [C] is linearised on the first available processor, the parallel
    branches are spread by {!Propmap} and recursively allocated on the
    resulting processor groups (a branch confined to one processor
    becomes a superchain via ONONEPROCESSOR), and [G(n+1)] is
    allocated on the full processor set. The result is a
    {!Schedule.t}: a set of superchains whose macro structure is
    itself an M-SPG. *)

val run :
  ?policy:Linearize.policy ->
  Ckpt_mspg.Mspg.t ->
  processors:int ->
  Schedule.t
(** [policy] selects the ONONEPROCESSOR linearisation order (default
    [Deterministic]; the paper uses a random topological sort).

    @raise Invalid_argument if [processors < 1]. *)
