(** Globally-aware refinement of checkpoint positions (extension).

    Algorithm 2 is optimal per superchain — it minimises each
    superchain's expected {e duration} in isolation — but the global
    objective is the expected {e makespan}, where only critical-path
    superchains matter: off-path superchains could afford denser (or
    sparser) checkpointing without the DP noticing. This module
    measures how much that matters: starting from any plan, a
    best-improvement local search toggles one checkpoint position at a
    time (the forced final position of every superchain is kept),
    re-evaluating the global expected makespan with PATHAPPROX.

    Empirically the gain over CKPTSOME is marginal (see the bench's
    refinement ablation) — evidence that the paper's decomposition
    loses almost nothing globally. *)

type result = {
  plan : Strategy.plan;
  initial_em : float;
  final_em : float;
  moves : int;  (** improving moves applied *)
  evaluations : int;  (** candidate plans priced *)
}

val hill_climb :
  ?max_rounds:int ->
  ?method_:Ckpt_eval.Evaluator.method_ ->
  Strategy.plan ->
  result
(** [hill_climb plan] runs best-improvement rounds until a round finds
    no improving toggle or [max_rounds] (default 10) is reached.
    [method_] defaults to PATHAPPROX.

    @raise Invalid_argument on a CKPTNONE plan. *)
